#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

/// \file obs.hpp
/// Causal wall-clock spans — the operational half of the telemetry story.
///
/// The deterministic layers (src/trace sim-time events, src/metrics
/// RunReports) answer "what did the simulation decide"; this layer
/// answers "where did the daemon's wall-clock time actually go".  It is
/// strictly separated from results: every reply payload, golden hash and
/// RunResult is byte-identical whether observability is on or off
/// (tests/obs pins this), because nothing here ever feeds back into
/// simulation state.
///
/// Model: a thread-local TraceContext carries (trace id, current span id).
/// ScopedSpan opens a child of the current context, times itself with the
/// steady clock, and on close appends one fixed-size SpanRecord to a
/// per-thread ring buffer — no locks, no allocation on the hot path (the
/// ring is preallocated at first use per thread).  Cross-thread fan-out
/// (SweepRunner arms, fleet machine advancement on util::ThreadPool)
/// propagates causality by capturing current_context() before submit and
/// adopting it in the task via ScopedContext, so a query's arms hang off
/// the query span in the exported trace.
///
/// Everything is inert until set_enabled(true): a disabled ScopedSpan is
/// two branch-predicted loads.  Export (write_chrome_spans) walks the
/// per-thread rings and emits Chrome-trace JSON ("X" complete events, ts
/// and dur in microseconds) loadable in chrome://tracing or Perfetto.
/// Export expects quiesced writers — the CLI exports after serve()
/// returns; live surfaces only read the atomic record/drop counters.

namespace istc::obs {

using SpanId = std::uint64_t;

/// The causal position of the current thread: which trace (one per root
/// span, e.g. one per `istc ask` query) and which span is open.
struct TraceContext {
  std::uint64_t trace = 0;  ///< 0 = no active trace
  SpanId span = 0;          ///< 0 = no open span (next span is a root)
};

/// Master switch for spans + the stage profiler.  Off by default; the
/// daemon turns it on for --obs / --obs-trace, benches A/B it.
bool enabled();
void set_enabled(bool on);

/// Nanoseconds since process start on the steady clock (never wall time:
/// immune to NTP steps, and small enough to subtract without overflow).
std::uint64_t now_ns();

/// One closed span.  `name` must be a string literal (static storage):
/// records store the pointer, not a copy, to keep the hot path
/// allocation-free.
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t trace = 0;
  SpanId id = 0;
  SpanId parent = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::int64_t arg = -1;  ///< optional payload (point index, batch size…)
};

/// The calling thread's current causal context (zeroes when idle).
TraceContext current_context();

/// Adopt a context captured on another thread — the fan-out glue.  Used
/// inside pool tasks so spans opened there parent correctly.  Restores
/// the previous context on destruction.
class ScopedContext {
 public:
  explicit ScopedContext(TraceContext ctx);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  TraceContext saved_;
  bool active_;
};

/// RAII span: opens a child of the current context (or a new root trace)
/// when observability is enabled, records on destruction.  Near-free when
/// disabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, std::int64_t arg = -1);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// The context this span established — capture before fanning out.
  TraceContext context() const;

 private:
  const char* name_;
  std::int64_t arg_;
  std::uint64_t start_ns_ = 0;
  TraceContext saved_;
  TraceContext mine_;
  bool active_ = false;
};

/// Live counters over every per-thread ring (atomics; safe concurrently).
struct RecorderStats {
  std::uint64_t recorded = 0;  ///< spans written (wrapped ones included)
  std::uint64_t dropped = 0;   ///< spans that overwrote an unread slot
  std::size_t threads = 0;     ///< rings registered (threads that spanned)
  std::size_t ring_capacity = 0;  ///< records per thread ring
};
RecorderStats recorder_stats();

/// Per-thread ring capacity for rings created after this call (existing
/// rings keep their size).  Default 16384 records/thread.
void set_ring_capacity(std::size_t records);

/// Drop all recorded spans, reset counters and stage profiles, and detach
/// retired rings.  For bench A/B sections and test isolation; callers
/// must quiesce span-writing threads first.
void reset();

/// Export every recorded span as a Chrome-trace JSON array.  Writers must
/// be quiesced (the daemon exports after serve() returns).  Spans come
/// out grouped per thread (tid = ring registration order) with "M"
/// metadata naming the process, ready for chrome://tracing / Perfetto.
void write_chrome_spans(std::ostream& out);
void write_chrome_spans_file(const std::string& path);

}  // namespace istc::obs
