#pragma once

#include <cstdint>
#include <vector>

#include "metrics/histogram.hpp"
#include "obs/obs.hpp"

/// \file profiler.hpp
/// The wall-clock self-profiler: scoped per-stage time attribution,
/// aggregated into HDR-style log2 histograms (metrics::Log2Histogram,
/// used header-only so this stays a util-level leaf library).
///
/// Each thread owns one histogram per Stage; observing is a thread-local
/// array index plus a Log2Histogram::add — no locks, no allocation.
/// profile_snapshot() merges the per-thread histograms under a registry
/// lock and returns quantiles per stage; that feeds the `stats` verb, the
/// /metrics endpoint and `istc top`.
///
/// Shares the obs master switch: ScopedTimer is inert (two loads) until
/// obs::set_enabled(true), and obs::reset() clears profiles too.  Like
/// spans, profile data never feeds back into simulation state.

namespace istc::obs {

/// Where daemon wall-time can go.  One histogram per stage per thread.
enum class Stage : int {
  kSchedSetup = 0,   ///< scheduler pass: pre-pipeline bookkeeping
  kSchedPriority,    ///< scheduler pass: priority stage
  kSchedDispatch,    ///< scheduler pass: dispatch stage
  kSchedBackfill,    ///< scheduler pass: backfill stage
  kSchedGate,        ///< scheduler pass: interstitial gate stage
  kSweepPrefix,      ///< sweep: shared-prefix simulation
  kSweepFork,        ///< sweep: serial fork creation
  kSweepArm,         ///< sweep: one point's advancement
  kEpochAdvance,     ///< fleet: parallel machine advance phase
  kEpochBoundary,    ///< fleet: serial report/route sync barrier
  kIngestApply,      ///< session: one ingest line end to end
  kIngestRewind,     ///< session: rewind + replay of the accepted tail
  kQueryCapture,     ///< session: under-lock epoch/fork capture
  kQueryVerdict,     ///< session: verdict assembly from both arms
  kCount
};

/// Stable snake_case label ("sched_backfill", "ingest_rewind", …) used in
/// stats JSON, Prometheus labels and the dashboard.
const char* stage_label(Stage s);

/// Record one observation (microseconds) for a stage on this thread.
/// No-op while observability is disabled.
void observe_stage_us(Stage s, std::uint64_t us);

/// RAII stage timer; observes elapsed microseconds on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Stage s);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stage stage_;
  std::uint64_t start_ns_ = 0;
  bool active_;
};

/// One stage's cross-thread aggregate.
struct StageProfile {
  Stage stage = Stage::kCount;
  const char* label = nullptr;
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
};

/// Merge every thread's histograms and return the stages with at least
/// one observation, in Stage order.  Safe to call while other threads
/// observe (their adds are plain writes into thread-owned histograms;
/// a racing snapshot may miss in-flight observations, never corrupt).
std::vector<StageProfile> profile_snapshot();

/// The merged histogram of one stage (empty histogram if unobserved).
metrics::Log2Histogram stage_histogram(Stage s);

/// Clear all per-thread profiles.  Called by obs::reset(); exposed for
/// tests that only care about profiles.
void reset_profiles();

}  // namespace istc::obs
