#pragma once

#include <cstdint>
#include <string>
#include <string_view>

/// \file exposition.hpp
/// Prometheus text-format (0.0.4) writer: the `GET /metrics` body
/// builder.  Deliberately dumb — it formats lines; the caller (Session)
/// decides what to publish.  Names are sanitized to [a-zA-Z0-9_:] so
/// registry names like "service.query_latency_us" become
/// "istc_service_query_latency_us".

namespace istc::obs {

class PrometheusWriter {
 public:
  /// Emit "# HELP"/"# TYPE" headers for a metric family.  `type` is one
  /// of counter / gauge / summary / untyped.
  void family(std::string_view name, std::string_view type,
              std::string_view help);

  /// "name value" and "name{labels} value" sample lines.  `labels` is the
  /// raw body between the braces, e.g. "quantile=\"0.99\"".
  void sample(std::string_view name, double value);
  void sample(std::string_view name, std::string_view labels, double value);

  /// A full summary family: quantile samples plus _sum and _count.
  void summary(std::string_view name, std::string_view help,
               const double* quantiles, const double* values, int n,
               double sum, std::uint64_t count);

  /// Map an arbitrary metric name onto the Prometheus charset, prefixed
  /// "istc_": dots and dashes become underscores.
  static std::string sanitize(std::string_view name);

  const std::string& text() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

}  // namespace istc::obs
