#pragma once

#include <optional>
#include <string>
#include <vector>

/// \file args.hpp
/// Minimal command-line parsing for the `istc` CLI tool.
///
/// Grammar: positionals and `--flag`, `--flag value`, `--flag=value`
/// tokens in any order.  A flag followed by another flag (or nothing) has
/// an empty value, which `has()` still reports as present — that is the
/// boolean-switch case.

namespace istc {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// Positional arguments in order (argv[0] is skipped).
  const std::vector<std::string>& positionals() const { return positionals_; }

  /// First positional or empty (conventionally the subcommand).
  std::string command() const {
    return positionals_.empty() ? std::string{} : positionals_.front();
  }

  bool has(const std::string& flag) const;

  /// Raw string value (empty for switches); nullopt when absent.
  std::optional<std::string> get(const std::string& flag) const;

  std::string get_or(const std::string& flag, std::string fallback) const;
  long get_int_or(const std::string& flag, long fallback) const;
  double get_num_or(const std::string& flag, double fallback) const;

  /// Flags whose values failed numeric parsing, and malformed tokens
  /// (e.g. single-dash options); empty means a clean parse.
  const std::vector<std::string>& errors() const { return errors_; }

  /// Flags never queried by any accessor — typo detection for the CLI.
  std::vector<std::string> unconsumed() const;

 private:
  struct Flag {
    std::string name;
    std::string value;
    mutable bool consumed = false;
  };
  const Flag* find(const std::string& flag) const;

  std::vector<std::string> positionals_;
  std::vector<Flag> flags_;
  std::vector<std::string> errors_;
};

}  // namespace istc
