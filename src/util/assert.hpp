#pragma once

#include <cstdio>
#include <cstdlib>

/// \file assert.hpp
/// Contract-checking macros in the spirit of the Core Guidelines' Expects /
/// Ensures.  Violations abort with a message; they are enabled in all build
/// types because the simulator is cheap relative to the cost of silently
/// corrupt schedules.

namespace istc::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "[istc] %s violated: %s at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace istc::detail

#define ISTC_EXPECTS(cond)                                                 \
  do {                                                                     \
    if (!(cond))                                                           \
      ::istc::detail::contract_failure("precondition", #cond, __FILE__,    \
                                       __LINE__);                          \
  } while (false)

#define ISTC_ENSURES(cond)                                                 \
  do {                                                                     \
    if (!(cond))                                                           \
      ::istc::detail::contract_failure("postcondition", #cond, __FILE__,   \
                                       __LINE__);                          \
  } while (false)

#define ISTC_ASSERT(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::istc::detail::contract_failure("invariant", #cond, __FILE__,       \
                                       __LINE__);                          \
  } while (false)
