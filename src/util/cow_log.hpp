#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "util/assert.hpp"

/// \file cow_log.hpp
/// Copy-on-write append-only log.
///
/// A CowLog is a vector split into a frozen, immutable prefix (shared
/// between copies through a shared_ptr) and a private append tail.  It
/// exists for run forks (core/fork.hpp): a mid-run scheduler carries two
/// large append-only arrays — the submission table (the whole native log)
/// and the completed-record log — and forking a run per sweep variant must
/// not duplicate megabytes of history per variant.  freeze() folds the
/// tail into the shared prefix; copying a frozen log is two pointer copies,
/// and every copy appends into its own tail from there.
///
/// Indexing is stable across freeze(), so 32-bit event arguments indexing
/// into the log stay valid over a fork boundary.

namespace istc::util {

template <class T>
class CowLog {
 public:
  std::size_t size() const { return base_size_ + tail_.size(); }
  bool empty() const { return size() == 0; }

  const T& operator[](std::size_t i) const {
    return i < base_size_ ? (*base_)[i] : tail_[i - base_size_];
  }

  const T& back() const {
    ISTC_EXPECTS(!empty());
    return tail_.empty() ? base_->back() : tail_.back();
  }

  void push_back(const T& value) { tail_.push_back(value); }
  void push_back(T&& value) { tail_.push_back(std::move(value)); }

  /// Reserve for `n` further appends.
  void reserve_extra(std::size_t n) { tail_.reserve(tail_.size() + n); }

  /// Fold the tail into the shared immutable prefix.  Afterwards copying
  /// this log is O(1); call on the parent immediately before forking.
  void freeze() {
    if (tail_.empty()) return;
    if (base_ == nullptr) {
      base_ = std::make_shared<const std::vector<T>>(std::move(tail_));
    } else {
      std::vector<T> merged;
      merged.reserve(base_->size() + tail_.size());
      merged.insert(merged.end(), base_->begin(), base_->end());
      merged.insert(merged.end(), std::make_move_iterator(tail_.begin()),
                    std::make_move_iterator(tail_.end()));
      base_ = std::make_shared<const std::vector<T>>(std::move(merged));
    }
    tail_.clear();
    base_size_ = base_->size();
  }

  /// Materialize the whole log as one vector and reset to empty.  The
  /// shared prefix is copied (other forks may still hold it); the tail is
  /// moved.
  std::vector<T> take() {
    std::vector<T> out;
    if (base_ != nullptr) {
      out.reserve(base_->size() + tail_.size());
      out.insert(out.end(), base_->begin(), base_->end());
      out.insert(out.end(), std::make_move_iterator(tail_.begin()),
                 std::make_move_iterator(tail_.end()));
      base_.reset();
      base_size_ = 0;
      tail_.clear();
    } else {
      out = std::move(tail_);
      tail_.clear();
    }
    return out;
  }

 private:
  /// Frozen prefix, shared between forks; null until the first freeze().
  std::shared_ptr<const std::vector<T>> base_;
  std::size_t base_size_ = 0;
  /// Private appends since the last freeze().
  std::vector<T> tail_;
};

}  // namespace istc::util
