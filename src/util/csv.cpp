#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace istc {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_line(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::header(const std::vector<std::string>& names) {
  write_line(names);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  write_line(cells);
}

void CsvWriter::row(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    cells.emplace_back(buf);
  }
  write_line(cells);
}

}  // namespace istc
