#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

/// \file stats.hpp
/// Streaming and batch descriptive statistics used throughout the metrics
/// and experiment layers.

namespace istc {

/// Welford's online mean/variance accumulator.  Numerically stable and
/// mergeable, so per-thread accumulators can be combined.
class OnlineStats {
 public:
  void add(double x);

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample: count, mean, stddev, min/median/max and
/// arbitrary quantiles.  Keeps a sorted copy; intended for result vectors,
/// not event streams.
class Summary {
 public:
  Summary() = default;
  explicit Summary(std::vector<double> values);

  static Summary of(std::span<const double> values);

  std::size_t count() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }
  double mean() const { return mean_; }
  double stddev() const { return stddev_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double median() const { return quantile(0.5); }

  /// Linear-interpolation quantile, q in [0, 1].
  double quantile(double q) const;

  /// "12.3 ± 4.5" rendering used by the paper's tables.
  std::string mean_pm_std(int precision = 1) const;

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double stddev_ = 0.0;
  double sum_ = 0.0;
};

/// Median of a sample without building a Summary.
double median_of(std::span<const double> values);

/// Quantile (linear interpolation) of an *already sorted* sample.
double sorted_quantile(std::span<const double> sorted, double q);

/// Pearson correlation of two equal-length samples (0 if degenerate).
double correlation(std::span<const double> x, std::span<const double> y);

/// Ordinary-least-squares fit y ~ a + b*x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

}  // namespace istc
