#pragma once

#include <fstream>
#include <string>
#include <vector>

/// \file csv.hpp
/// Minimal CSV emission for experiment series (figure data dumps).  Values
/// are written verbatim; fields containing separators/quotes are quoted.

namespace istc {

class CsvWriter {
 public:
  /// Opens (truncates) the file; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void header(const std::vector<std::string>& names);
  void row(const std::vector<std::string>& cells);
  void row(const std::vector<double>& values, int precision = 6);

  /// Quote a field if needed (exposed for tests).
  static std::string escape(const std::string& field);

 private:
  void write_line(const std::vector<std::string>& cells);
  std::ofstream out_;
};

}  // namespace istc
