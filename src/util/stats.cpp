#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace istc {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

Summary::Summary(std::vector<double> values) : sorted_(std::move(values)) {
  std::sort(sorted_.begin(), sorted_.end());
  OnlineStats acc;
  for (double v : sorted_) acc.add(v);
  mean_ = acc.mean();
  stddev_ = acc.stddev();
  sum_ = acc.sum();
}

Summary Summary::of(std::span<const double> values) {
  return Summary(std::vector<double>(values.begin(), values.end()));
}

double Summary::min() const {
  ISTC_EXPECTS(!sorted_.empty());
  return sorted_.front();
}

double Summary::max() const {
  ISTC_EXPECTS(!sorted_.empty());
  return sorted_.back();
}

double Summary::quantile(double q) const {
  return sorted_quantile(sorted_, q);
}

std::string Summary::mean_pm_std(int precision) const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f ± %.*f", precision, mean_, precision,
                stddev_);
  return buf;
}

double sorted_quantile(std::span<const double> sorted, double q) {
  ISTC_EXPECTS(!sorted.empty());
  ISTC_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median_of(std::span<const double> values) {
  ISTC_EXPECTS(!values.empty());
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return sorted_quantile(copy, 0.5);
}

double correlation(std::span<const double> x, std::span<const double> y) {
  ISTC_EXPECTS(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  OnlineStats sx, sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  double cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  }
  cov /= static_cast<double>(x.size() - 1);
  const double denom = sx.stddev() * sy.stddev();
  return denom > 0 ? cov / denom : 0.0;
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  ISTC_EXPECTS(x.size() == y.size());
  ISTC_EXPECTS(x.size() >= 2);
  OnlineStats sx, sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - sx.mean()) * (y[i] - sy.mean());
    sxx += (x[i] - sx.mean()) * (x[i] - sx.mean());
  }
  LinearFit fit;
  fit.slope = sxx > 0 ? sxy / sxx : 0.0;
  fit.intercept = sy.mean() - fit.slope * sx.mean();
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = fit.intercept + fit.slope * x[i];
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - sy.mean()) * (y[i] - sy.mean());
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace istc
