#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>
#include <span>
#include <vector>

#include "util/assert.hpp"

/// \file rng.hpp
/// Deterministic, platform-independent random numbers.
///
/// The standard library's distribution objects are implementation-defined,
/// so two compilers given the same seed can disagree; workload generation
/// must be bit-reproducible for the experiment tables to be replayable.
/// We therefore ship xoshiro256** (engine) plus hand-rolled distributions.

namespace istc {

/// splitmix64: used to expand a single 64-bit seed into engine state.
/// Reference: Vigna, http://prng.di.unimi.it/splitmix64.c
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator.
/// Reference: Blackman & Vigna, http://prng.di.unimi.it/xoshiro256starstar.c
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1d0c0ffee5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
    // All-zero state is a fixed point; splitmix cannot emit four zeros from
    // any seed, but guard anyway.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  /// Derive an independent stream (e.g. one per replication / per thread).
  [[nodiscard]] Rng fork(std::uint64_t stream) const {
    SplitMix64 sm(state_[0] ^ (stream * 0x9e3779b97f4a7c15ULL) ^ state_[3]);
    Rng r(sm.next());
    return r;
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface so std::shuffle etc. also work.
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  Unbiased (Lemire rejection).
  std::uint64_t below(std::uint64_t n) {
    ISTC_EXPECTS(n > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    ISTC_EXPECTS(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Exponential with given mean (= 1/rate).
  double exponential(double mean) {
    ISTC_EXPECTS(mean > 0);
    // 1 - uniform() is in (0, 1]; log of it is finite.
    return -mean * std::log(1.0 - uniform());
  }

  /// Standard normal via Box-Muller (deterministic, no cached spare so the
  /// stream position is a pure function of call count).
  double normal() {
    const double u1 = 1.0 - uniform();  // (0,1]
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mu, double sigma) { return mu + sigma * normal(); }

  /// Lognormal: exp(N(mu, sigma)).  mu/sigma are the log-space parameters.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Pareto with scale xm and shape alpha (heavy tail for alpha <= 2).
  double pareto(double xm, double alpha) {
    ISTC_EXPECTS(xm > 0 && alpha > 0);
    return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
  }

  /// Bounded Pareto on [lo, hi] with shape alpha.
  double bounded_pareto(double lo, double hi, double alpha) {
    ISTC_EXPECTS(0 < lo && lo < hi && alpha > 0);
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    const double u = uniform();
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Weighted discrete sampler over a fixed set of outcomes (linear scan;
/// intended for small category counts such as job-size classes).
class DiscreteSampler {
 public:
  DiscreteSampler() = default;

  explicit DiscreteSampler(std::span<const double> weights) {
    ISTC_EXPECTS(!weights.empty());
    cumulative_.reserve(weights.size());
    double total = 0;
    for (double w : weights) {
      ISTC_EXPECTS(w >= 0);
      total += w;
      cumulative_.push_back(total);
    }
    ISTC_EXPECTS(total > 0);
    for (double& c : cumulative_) c /= total;
    cumulative_.back() = 1.0;  // guard against rounding
  }

  std::size_t operator()(Rng& rng) const {
    ISTC_EXPECTS(!cumulative_.empty());
    const double u = rng.uniform();
    for (std::size_t i = 0; i + 1 < cumulative_.size(); ++i) {
      if (u < cumulative_[i]) return i;
    }
    return cumulative_.size() - 1;
  }

  std::size_t size() const { return cumulative_.size(); }
  bool empty() const { return cumulative_.empty(); }

 private:
  std::vector<double> cumulative_;
};

}  // namespace istc
