#pragma once

#include <cstdint>
#include <string>

/// \file time.hpp
/// Simulation time.  All simulator clocks are integral seconds since the
/// start of the trace: integral time keeps event ordering exact and replays
/// bit-reproducible across platforms (floating-point accumulation is not).

namespace istc {

/// Seconds since trace start.  Signed so durations and differences are
/// representable; the simulator never runs with negative absolute time.
using SimTime = std::int64_t;

/// A duration in seconds (same representation as SimTime by design; the
/// distinction is documentation).
using Seconds = std::int64_t;

inline constexpr Seconds kSecondsPerMinute = 60;
inline constexpr Seconds kSecondsPerHour = 3600;
inline constexpr Seconds kSecondsPerDay = 86400;
inline constexpr Seconds kSecondsPerWeek = 7 * kSecondsPerDay;

/// Sentinel for "never" / unbounded horizon.
inline constexpr SimTime kTimeInfinity = INT64_MAX / 4;

constexpr SimTime minutes(std::int64_t m) { return m * kSecondsPerMinute; }
constexpr SimTime hours(std::int64_t h) { return h * kSecondsPerHour; }
constexpr SimTime days(std::int64_t d) { return d * kSecondsPerDay; }

/// Convert seconds to fractional hours/days for reporting.
constexpr double to_hours(SimTime t) { return static_cast<double>(t) / 3600.0; }
constexpr double to_days(SimTime t) { return static_cast<double>(t) / 86400.0; }

/// Hour-of-day in [0,24) assuming the trace starts at midnight.
constexpr int hour_of_day(SimTime t) {
  return static_cast<int>((t % kSecondsPerDay + kSecondsPerDay) %
                          kSecondsPerDay / kSecondsPerHour);
}

/// Day index since trace start (day 0 = first day).
constexpr std::int64_t day_index(SimTime t) { return t / kSecondsPerDay; }

/// "3d 04:05:06"-style rendering for logs and reports.
std::string format_duration(Seconds s);

/// "1234.5 h" style rendering used in the paper's tables.
std::string format_hours(SimTime t, int precision = 1);

}  // namespace istc
