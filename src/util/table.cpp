#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace istc {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::headers(std::vector<std::string> names) {
  headers_ = std::move(names);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string Table::pm(double mean, double sd, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f ± %.*f", precision, mean, precision,
                sd);
  return buf;
}

std::string Table::str() const {
  std::size_t ncols = headers_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  if (ncols == 0) return title_ + "\n(empty table)\n";

  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  widen(headers_);
  for (const auto& r : rows_) widen(r);

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t i = 0; i < ncols; ++i) {
      s.append(width[i] + 2, '-');
      s += '+';
    }
    s += '\n';
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      s += ' ';
      s += c;
      s.append(width[i] - c.size() + 1, ' ');
      s += '|';
    }
    s += '\n';
    return s;
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule();
  if (!headers_.empty()) {
    out += line(headers_);
    out += rule();
  }
  for (const auto& r : rows_) out += line(r);
  out += rule();
  return out;
}

void Table::print(std::FILE* out) const {
  const std::string s = str();
  std::fwrite(s.data(), 1, s.size(), out);
}

KeyValueBlock::KeyValueBlock(std::string title) : title_(std::move(title)) {}

KeyValueBlock& KeyValueBlock::add(std::string key, std::string value) {
  items_.emplace_back(std::move(key), std::move(value));
  return *this;
}

KeyValueBlock& KeyValueBlock::add(std::string key, double value,
                                  int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return add(std::move(key), std::string(buf));
}

std::string KeyValueBlock::str() const {
  std::size_t w = 0;
  for (const auto& [k, v] : items_) w = std::max(w, k.size());
  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  for (const auto& [k, v] : items_) {
    out += "  ";
    out += k;
    out.append(w - k.size(), ' ');
    out += " : ";
    out += v;
    out += '\n';
  }
  return out;
}

void KeyValueBlock::print(std::FILE* out) const {
  const std::string s = str();
  std::fwrite(s.data(), 1, s.size(), out);
}

}  // namespace istc
