#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// \file histogram.hpp
/// Fixed-bin and log10-bin histograms.  The paper's Figs. 5-6 bin native-job
/// wait times into decades of seconds: [0,1), [1,2), ... in log10 space,
/// with an extra bin for zero/sub-second waits folded into the first decade.

namespace istc {

/// Histogram over log10(x) with unit-width decade bins starting at 10^0.
/// Values below 1 (including 0) land in the first bin, matching the paper's
/// "(0,1]" decade convention.
class Log10Histogram {
 public:
  /// \param decades number of decade bins, e.g. 6 -> [0,1)...[5,6).
  explicit Log10Histogram(std::size_t decades);

  void add(double value);
  void add_all(const std::vector<double>& values);

  std::size_t decades() const { return counts_.size(); }
  std::size_t count(std::size_t decade) const;
  std::size_t total() const { return total_; }

  /// Fraction of samples in a decade (0 when empty).
  double fraction(std::size_t decade) const;

  /// Label such as "[2,3)" for reports.
  static std::string bin_label(std::size_t decade);

 private:
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Uniform-width linear histogram on [lo, hi); out-of-range values clamp to
/// the edge bins so totals are conserved.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double value);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t total() const { return total_; }
  double fraction(std::size_t bin) const;
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Empirical survival function P(X > x), the paper's "CDF > Makespan"
/// (Fig. 3).  Evaluate at arbitrary x or dump as a step series.
class SurvivalCurve {
 public:
  explicit SurvivalCurve(std::vector<double> samples);

  /// P(X > x) over the sample.
  double at(double x) const;

  /// (x, P(X > x)) pairs at each distinct sample point.
  std::vector<std::pair<double, double>> steps() const;

  std::size_t count() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
};

}  // namespace istc
