#pragma once

#include <cstdio>
#include <string>
#include <vector>

/// \file table.hpp
/// ASCII table rendering for the experiment harness: each bench binary
/// prints the rows of the paper table it reproduces.

namespace istc {

class Table {
 public:
  explicit Table(std::string title = {});

  Table& headers(std::vector<std::string> names);

  /// Append a row; missing cells render empty, extra cells widen the table.
  Table& row(std::vector<std::string> cells);

  /// Printf-style cell helpers.
  static std::string num(double v, int precision = 1);
  static std::string integer(long long v);
  static std::string pm(double mean, double sd, int precision = 1);

  /// Render with box-drawing rules.
  std::string str() const;
  void print(std::FILE* out = stdout) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Simple two-column "key: value" block used for scenario parameters.
class KeyValueBlock {
 public:
  explicit KeyValueBlock(std::string title = {});
  KeyValueBlock& add(std::string key, std::string value);
  KeyValueBlock& add(std::string key, double value, int precision = 2);
  std::string str() const;
  void print(std::FILE* out = stdout) const;

 private:
  std::string title_;
  std::vector<std::pair<std::string, std::string>> items_;
};

}  // namespace istc
