#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.hpp
/// A small fixed-size worker pool plus a deterministic parallel_for.
///
/// The simulator itself is single-threaded (a discrete-event schedule is a
/// serial dependence chain), but the experiment layer runs many independent
/// replications — Monte-Carlo starts, parameter sweeps — which parallelize
/// embarrassingly.  Determinism note: each replication owns a forked RNG
/// stream keyed by its index, so results are independent of thread count.

namespace istc {

/// Process-wide default worker count, consulted wherever a pool is sized
/// implicitly: `ThreadPool(0)` and the transient `parallel_for`.  0 (the
/// initial state) means hardware concurrency.  The CLI's `--threads` flag
/// and the bench harness's ISTC_THREADS env var land here, so artifacts
/// can record — and runs can pin — the parallelism they used.
void set_default_thread_count(std::size_t threads);

/// The resolved default (>= 1): the configured count, or hardware
/// concurrency when none was set.
std::size_t default_thread_count();

/// Saturation gauges for a pool (or, via ThreadPool::global_stats, every
/// pool the process ever created).  Wall-clock observability only: these
/// feed bench preambles and the obs exposition surface, never results.
struct PoolStats {
  std::uint64_t tasks_submitted = 0;
  std::uint64_t tasks_executed = 0;
  std::size_t queue_depth = 0;   ///< tasks currently waiting
  std::size_t queue_hwm = 0;     ///< high-water mark of queue_depth
  std::size_t busy_workers = 0;  ///< workers currently running a task
  std::size_t busy_hwm = 0;      ///< high-water mark of busy_workers
  std::uint64_t pools_created = 0;  ///< global_stats only; 0 per-instance
};

class ThreadPool {
 public:
  /// \param threads 0 means default_thread_count().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; runs at some point on a worker thread.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// This pool's saturation gauges (consistent snapshot under the lock).
  PoolStats stats() const;

  /// Process-wide gauges accumulated across every pool ever constructed —
  /// transient sweep pools included, which is what makes the numbers
  /// meaningful for a daemon that builds a pool per query.  queue_depth /
  /// busy_workers are live values across currently existing pools.
  static PoolStats global_stats();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::uint64_t tasks_submitted_ = 0;
  std::uint64_t tasks_executed_ = 0;
  std::size_t queue_hwm_ = 0;
  std::size_t busy_hwm_ = 0;
};

/// Run fn(i) for i in [0, n) across the pool; blocks until done.
/// Exceptions in tasks terminate via an explicit std::terminate in the
/// worker loop — never silently, and never by deadlocking wait_idle (the
/// experiment harness treats a failed replication as a programming error,
/// not a recoverable event).  tests/util/test_thread_pool.cpp pins the
/// death path.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Convenience: run fn(i) for i in [0, n) on a transient pool sized by
/// default_thread_count(); falls back to serial execution when n is tiny.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace istc
