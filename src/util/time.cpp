#include "util/time.hpp"

#include <cinttypes>
#include <cstdio>

namespace istc {

std::string format_duration(Seconds s) {
  const bool neg = s < 0;
  if (neg) s = -s;
  const std::int64_t d = s / kSecondsPerDay;
  const std::int64_t h = (s / kSecondsPerHour) % 24;
  const std::int64_t m = (s / kSecondsPerMinute) % 60;
  const std::int64_t sec = s % 60;
  char buf[64];
  if (d > 0) {
    std::snprintf(buf, sizeof buf, "%s%" PRId64 "d %02" PRId64 ":%02" PRId64
                  ":%02" PRId64, neg ? "-" : "", d, h, m, sec);
  } else {
    std::snprintf(buf, sizeof buf, "%s%02" PRId64 ":%02" PRId64 ":%02" PRId64,
                  neg ? "-" : "", h, m, sec);
  }
  return buf;
}

std::string format_hours(SimTime t, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f h", precision, to_hours(t));
  return buf;
}

}  // namespace istc
