#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>

#include "util/assert.hpp"

namespace istc {

namespace {
// 0 = unset (fall back to hardware concurrency).  Atomic because bench
// workers may size transient pools while the main thread reconfigures.
std::atomic<std::size_t> g_default_threads{0};

// Process-global saturation gauges, accumulated across every pool ever
// created (sweeps build transient pools, so per-instance numbers vanish
// with the pool).  Relaxed atomics: these are telemetry, not
// synchronization, and must never perturb results.
std::atomic<std::uint64_t> g_tasks_submitted{0};
std::atomic<std::uint64_t> g_tasks_executed{0};
std::atomic<std::size_t> g_queue_depth{0};
std::atomic<std::size_t> g_queue_hwm{0};
std::atomic<std::size_t> g_busy_workers{0};
std::atomic<std::size_t> g_busy_hwm{0};
std::atomic<std::uint64_t> g_pools_created{0};

void raise_hwm(std::atomic<std::size_t>& hwm, std::size_t v) {
  std::size_t seen = hwm.load(std::memory_order_relaxed);
  while (seen < v &&
         !hwm.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}
}  // namespace

void set_default_thread_count(std::size_t threads) {
  g_default_threads.store(threads, std::memory_order_relaxed);
}

std::size_t default_thread_count() {
  const std::size_t configured =
      g_default_threads.load(std::memory_order_relaxed);
  if (configured > 0) return configured;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  g_pools_created.fetch_add(1, std::memory_order_relaxed);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  ISTC_EXPECTS(task != nullptr);
  // The global depth rises before the enqueue: the matching decrement in
  // worker_loop can only run after the push, so the gauge never
  // underflows however the worker races the unlock.
  g_tasks_submitted.fetch_add(1, std::memory_order_relaxed);
  raise_hwm(g_queue_hwm,
            g_queue_depth.fetch_add(1, std::memory_order_relaxed) + 1);
  {
    std::lock_guard lk(mu_);
    queue_.push_back(std::move(task));
    ++tasks_submitted_;
    queue_hwm_ = std::max(queue_hwm_, queue_.size());
  }
  cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      busy_hwm_ = std::max(busy_hwm_, active_);
    }
    g_queue_depth.fetch_sub(1, std::memory_order_relaxed);
    raise_hwm(g_busy_hwm,
              g_busy_workers.fetch_add(1, std::memory_order_relaxed) + 1);
    // Explicit std::terminate path.  An exception escaping here would
    // terminate anyway (it leaves a thread entry function), but only after
    // skipping the active_ decrement below — so a caller already blocked in
    // wait_idle() could deadlock on the never-idle pool instead of dying.
    // Fail fast and loudly; parallel_for's contract says task exceptions
    // are programming errors, not recoverable events.
    try {
      task();
    } catch (...) {
      std::fputs(
          "istc::ThreadPool: parallel_for task threw; terminating\n",
          stderr);
      std::terminate();
    }
    g_busy_workers.fetch_sub(1, std::memory_order_relaxed);
    g_tasks_executed.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard lk(mu_);
      ++tasks_executed_;
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

PoolStats ThreadPool::stats() const {
  std::lock_guard lk(mu_);
  PoolStats s;
  s.tasks_submitted = tasks_submitted_;
  s.tasks_executed = tasks_executed_;
  s.queue_depth = queue_.size();
  s.queue_hwm = queue_hwm_;
  s.busy_workers = active_;
  s.busy_hwm = busy_hwm_;
  return s;
}

PoolStats ThreadPool::global_stats() {
  PoolStats s;
  s.tasks_submitted = g_tasks_submitted.load(std::memory_order_relaxed);
  s.tasks_executed = g_tasks_executed.load(std::memory_order_relaxed);
  s.queue_depth = g_queue_depth.load(std::memory_order_relaxed);
  s.queue_hwm = g_queue_hwm.load(std::memory_order_relaxed);
  s.busy_workers = g_busy_workers.load(std::memory_order_relaxed);
  s.busy_hwm = g_busy_hwm.load(std::memory_order_relaxed);
  s.pools_created = g_pools_created.load(std::memory_order_relaxed);
  return s;
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  const std::size_t workers = std::min(pool.size(), n);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&next, n, &fn] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  pool.wait_idle();
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n <= 1 || default_thread_count() == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool;
  parallel_for(pool, n, fn);
}

}  // namespace istc
