#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>

#include "util/assert.hpp"

namespace istc {

namespace {
// 0 = unset (fall back to hardware concurrency).  Atomic because bench
// workers may size transient pools while the main thread reconfigures.
std::atomic<std::size_t> g_default_threads{0};
}  // namespace

void set_default_thread_count(std::size_t threads) {
  g_default_threads.store(threads, std::memory_order_relaxed);
}

std::size_t default_thread_count() {
  const std::size_t configured =
      g_default_threads.load(std::memory_order_relaxed);
  if (configured > 0) return configured;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  ISTC_EXPECTS(task != nullptr);
  {
    std::lock_guard lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    // Explicit std::terminate path.  An exception escaping here would
    // terminate anyway (it leaves a thread entry function), but only after
    // skipping the active_ decrement below — so a caller already blocked in
    // wait_idle() could deadlock on the never-idle pool instead of dying.
    // Fail fast and loudly; parallel_for's contract says task exceptions
    // are programming errors, not recoverable events.
    try {
      task();
    } catch (...) {
      std::fputs(
          "istc::ThreadPool: parallel_for task threw; terminating\n",
          stderr);
      std::terminate();
    }
    {
      std::lock_guard lk(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  const std::size_t workers = std::min(pool.size(), n);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&next, n, &fn] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  pool.wait_idle();
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n <= 1 || default_thread_count() == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool;
  parallel_for(pool, n, fn);
}

}  // namespace istc
