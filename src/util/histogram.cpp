#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace istc {

Log10Histogram::Log10Histogram(std::size_t decades) : counts_(decades, 0) {
  ISTC_EXPECTS(decades > 0);
}

void Log10Histogram::add(double value) {
  ISTC_EXPECTS(value >= 0);
  std::size_t bin = 0;
  if (value >= 1.0) {
    bin = static_cast<std::size_t>(std::log10(value));
    bin = std::min(bin, counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

void Log10Histogram::add_all(const std::vector<double>& values) {
  for (double v : values) add(v);
}

std::size_t Log10Histogram::count(std::size_t decade) const {
  ISTC_EXPECTS(decade < counts_.size());
  return counts_[decade];
}

double Log10Histogram::fraction(std::size_t decade) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(decade)) / static_cast<double>(total_);
}

std::string Log10Histogram::bin_label(std::size_t decade) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "[%zu,%zu)", decade, decade + 1);
  return buf;
}

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  ISTC_EXPECTS(bins > 0);
  ISTC_EXPECTS(hi > lo);
}

void LinearHistogram::add(double value) {
  double idx = (value - lo_) / width_;
  std::size_t bin = 0;
  if (idx > 0) {
    bin = std::min(static_cast<std::size_t>(idx), counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

std::size_t LinearHistogram::count(std::size_t bin) const {
  ISTC_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double LinearHistogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

double LinearHistogram::bin_lo(std::size_t bin) const {
  ISTC_EXPECTS(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

double LinearHistogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + width_;
}

SurvivalCurve::SurvivalCurve(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double SurvivalCurve::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  const auto above = static_cast<std::size_t>(sorted_.end() - it);
  return static_cast<double>(above) / static_cast<double>(sorted_.size());
}

std::vector<std::pair<double, double>> SurvivalCurve::steps() const {
  std::vector<std::pair<double, double>> out;
  const double n = static_cast<double>(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) continue;
    out.emplace_back(sorted_[i], static_cast<double>(sorted_.size() - i - 1) / n);
  }
  return out;
}

}  // namespace istc
