#include "util/args.hpp"

#include <cstdlib>

namespace istc {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    if (tok.rfind("--", 0) == 0) {
      const auto eq = tok.find('=');
      if (eq != std::string::npos) {
        flags_.push_back({tok.substr(2, eq - 2), tok.substr(eq + 1)});
        continue;
      }
      std::string value;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
      flags_.push_back({tok.substr(2), std::move(value)});
    } else if (!tok.empty() && tok[0] == '-' && tok.size() > 1) {
      errors_.push_back("unsupported single-dash option: " + tok);
    } else {
      positionals_.push_back(tok);
    }
  }
}

const ArgParser::Flag* ArgParser::find(const std::string& flag) const {
  // Last occurrence wins, matching common CLI conventions.
  const Flag* hit = nullptr;
  for (const auto& f : flags_) {
    if (f.name == flag) hit = &f;
  }
  if (hit) {
    for (const auto& f : flags_) {
      if (f.name == flag) f.consumed = true;
    }
  }
  return hit;
}

bool ArgParser::has(const std::string& flag) const {
  return find(flag) != nullptr;
}

std::optional<std::string> ArgParser::get(const std::string& flag) const {
  const Flag* f = find(flag);
  if (!f) return std::nullopt;
  return f->value;
}

std::string ArgParser::get_or(const std::string& flag,
                              std::string fallback) const {
  const Flag* f = find(flag);
  return f && !f->value.empty() ? f->value : std::move(fallback);
}

long ArgParser::get_int_or(const std::string& flag, long fallback) const {
  const Flag* f = find(flag);
  if (!f || f->value.empty()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(f->value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    const_cast<ArgParser*>(this)->errors_.push_back(
        "flag --" + flag + " expects an integer, got '" + f->value + "'");
    return fallback;
  }
  return v;
}

double ArgParser::get_num_or(const std::string& flag, double fallback) const {
  const Flag* f = find(flag);
  if (!f || f->value.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(f->value.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    const_cast<ArgParser*>(this)->errors_.push_back(
        "flag --" + flag + " expects a number, got '" + f->value + "'");
    return fallback;
  }
  return v;
}

std::vector<std::string> ArgParser::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& f : flags_) {
    if (!f.consumed) out.push_back(f.name);
  }
  return out;
}

}  // namespace istc
