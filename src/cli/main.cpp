// The `istc` command-line tool: the library's facilities behind one
// binary, for users who want answers rather than code.
//
//   istc report  --site <ross|bluemtn|bluepac>
//   istc harvest --site <...> --cpus 32 --sec1ghz 120 [--cap 0.9]
//                [--gate queue|head|always]
//   istc plan    --site <...> --petacycles 7.7 [--max-delay-s 600]
//                [--max-breakage 1.05]
//   istc replay  --swf trace.swf [--cpus 1024] [--clock 1.0]
//                [--icpus 8] [--isec1ghz 120]

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "core/advisor.hpp"
#include "core/driver.hpp"
#include "core/experiment.hpp"
#include "grid/fleet.hpp"
#include "grid/report.hpp"
#include "metrics/report.hpp"
#include "metrics/utilization.hpp"
#include "metrics/waits.hpp"
#include "obs/obs.hpp"
#include "sched/scheduler.hpp"
#include "service/json.hpp"
#include "service/server.hpp"
#include "service/session.hpp"
#include "sim/engine.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/presets.hpp"
#include "workload/swf.hpp"

namespace {

using namespace istc;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  istc report  --site <ross|bluemtn|bluepac>\n"
      "  istc harvest --site <...> [--cpus 32] [--sec1ghz 120]\n"
      "               [--cap 0.95] [--gate queue|head|always]\n"
      "               [--fault-mtbf-h 0] [--fault-repair-h 4]\n"
      "               [--fault-node-mtbf-h 0] [--fault-node-repair-h 2]\n"
      "               [--fault-node-cpus 128] [--fault-seed N]\n"
      "               [--retry-max 3] [--retry-backoff-s 300]\n"
      "               [--checkpoint-s 0]\n"
      "               [--sample-interval-s 0] [--report run.json]\n"
      "               [--series-csv series.csv]\n"
      "  istc plan    --site <...> --petacycles 7.7 [--max-delay-s 900]\n"
      "               [--max-breakage 1.10]\n"
      "  istc replay  --swf trace.swf [--cpus 1024] [--clock 1.0]\n"
      "               [--icpus 8] [--isec1ghz 120]\n"
      "  istc grid    [--grid-machines ross,bluemtn,bluepac,synth1]\n"
      "               [--broker-policy best-fit|round-robin|least-loaded]\n"
      "               [--project-quota 0.25] [--grid-projects 6]\n"
      "               [--grid-jobs 300] [--grid-latency-s 30]\n"
      "               [--grid-seed N] [--report fleet.json]\n"
      "  istc serve   --site <...> (--socket /path.sock | --port N)\n"
      "               [--stream-cpus 32 --stream-sec1ghz 120]\n"
      "               [--snapshot-interval-s 21600] [--preload trace.swf]\n"
      "               [--obs] [--obs-trace spans.json]\n"
      "  istc ask     (--socket /path.sock | --port N) ['<json request>'...]\n"
      "               (no request operands: reads request lines from stdin)\n"
      "  istc top     (--socket /path.sock | --port N) [--interval-s 2]\n"
      "               [--count N]  (refreshing daemon dashboard; --count 1\n"
      "               prints one snapshot and exits)\n"
      "\n"
      "global: --threads N pins the worker-pool width (0 = hardware)\n"
      "harvest and replay accept trace exports (see README, Inspecting a\n"
      "run): --trace out.jsonl --trace-chrome out.json --trace-csv out.csv\n");
  return 2;
}

std::optional<cluster::Site> parse_site(const std::string& s) {
  if (s == "ross") return cluster::Site::kRoss;
  if (s == "bluemtn" || s == "bluemountain") return cluster::Site::kBlueMountain;
  if (s == "bluepac" || s == "bluepacific") return cluster::Site::kBluePacific;
  return std::nullopt;
}

void print_run_summary(const char* title, const sched::RunResult& run) {
  const auto w = metrics::wait_stats(run.records);
  const auto wl =
      metrics::wait_stats(metrics::largest_native(run.records, 0.05));
  KeyValueBlock kv(title);
  kv.add("machine", run.machine.name + " (" +
                        std::to_string(run.machine.cpus) + " CPUs)");
  kv.add("log span", format_duration(run.span));
  kv.add("native jobs", Table::integer(
                            static_cast<long long>(run.native_count())));
  kv.add("interstitial jobs",
         Table::integer(static_cast<long long>(run.interstitial_count())));
  kv.add("overall utilization",
         metrics::average_utilization(run.records, run.machine.cpus, 0,
                                      run.span),
         3);
  kv.add("native utilization",
         metrics::average_utilization(run.records, run.machine.cpus, 0,
                                      run.span,
                                      metrics::JobFilter::kNativeOnly),
         3);
  kv.add("native median wait", format_duration(
                                   static_cast<Seconds>(w.median_wait_s)));
  kv.add("native mean wait",
         format_duration(static_cast<Seconds>(w.avg_wait_s)));
  kv.add("largest-5% median wait",
         format_duration(static_cast<Seconds>(wl.median_wait_s)));
  kv.print();
}

/// Shared --trace / --trace-chrome / --trace-csv handling.  Returns an
/// engaged tracer when any export was requested.
std::optional<trace::Tracer> make_tracer(const ArgParser& args) {
  if (args.get("trace") || args.get("trace-chrome") || args.get("trace-csv")) {
    return std::make_optional<trace::Tracer>(trace::TraceMode::kFull);
  }
  return std::nullopt;
}

/// Per-stage pass cost (priority / dispatch / backfill / gate) from the
/// trace summary; printed whenever tracing was requested so --trace runs
/// always surface where scheduling time went.
void print_stage_timings(const trace::TraceSummary& s) {
  if (s.sched_passes == 0) return;
  std::printf("scheduler pass cost: %llu passes, mean %.1f us, max %llu us\n",
              static_cast<unsigned long long>(s.sched_passes),
              s.mean_pass_us(),
              static_cast<unsigned long long>(s.sched_pass_us_max));
  std::printf("  %-8s %8llu us over %llu runs\n", "setup",
              static_cast<unsigned long long>(s.stage_setup_us),
              static_cast<unsigned long long>(s.sched_passes));
  static constexpr const char* kStageNames[trace::TraceSummary::kNumStages] = {
      "priority", "dispatch", "backfill", "gate"};
  for (int i = 0; i < trace::TraceSummary::kNumStages; ++i) {
    std::printf("  %-8s %8llu us over %llu runs\n", kStageNames[i],
                static_cast<unsigned long long>(s.stage_us[i]),
                static_cast<unsigned long long>(s.stage_runs[i]));
  }
  const std::uint64_t sorts = s.priority_recomputes + s.priority_reuses;
  if (sorts > 0) {
    std::printf("  priority order reused in %llu/%llu passes; "
                "%llu profile rebuilds\n",
                static_cast<unsigned long long>(s.priority_reuses),
                static_cast<unsigned long long>(sorts),
                static_cast<unsigned long long>(s.profile_rebuilds));
  }
  std::printf("event core: peak queue depth %llu, largest timestep batch "
              "%llu, %llu heap allocs\n",
              static_cast<unsigned long long>(s.engine_peak_queue_depth),
              static_cast<unsigned long long>(s.engine_max_timestep_batch),
              static_cast<unsigned long long>(s.engine_heap_allocations));
  std::printf("  events scheduled: %llu submit, %llu finish, %llu wake, "
              "%llu callback\n",
              static_cast<unsigned long long>(s.engine_events_job_submit),
              static_cast<unsigned long long>(s.engine_events_job_finish),
              static_cast<unsigned long long>(s.engine_events_wake),
              static_cast<unsigned long long>(s.engine_events_callback));
  if (s.faults_injected > 0) {
    std::printf("faults: %llu injected (%llu crashes, %llu node failures)\n",
                static_cast<unsigned long long>(s.faults_injected),
                static_cast<unsigned long long>(s.fault_crashes),
                static_cast<unsigned long long>(s.fault_node_failures));
    std::printf("  killed %llu native / %llu interstitial; "
                "%llu native resubmits\n",
                static_cast<unsigned long long>(s.fault_killed_native),
                static_cast<unsigned long long>(s.fault_killed_interstitial),
                static_cast<unsigned long long>(s.fault_native_resubmits));
    std::printf("  cpu-hours lost %.1f, recovered by checkpoints %.1f\n",
                static_cast<double>(s.fault_cpu_sec_lost) / 3600.0,
                static_cast<double>(s.fault_cpu_sec_recovered) / 3600.0);
    std::printf("  %llu retries submitted, %llu lineages exhausted\n",
                static_cast<unsigned long long>(s.fault_retries),
                static_cast<unsigned long long>(s.fault_retries_exhausted));
  }
}

void export_traces(const ArgParser& args, const trace::Tracer& tracer,
                   const cluster::MachineSpec& machine) {
  const auto write = [](const char* what, const std::string& path,
                        auto&& writer) {
    if (path.empty()) return;
    try {
      writer(path);
      std::printf("wrote %s trace to %s\n", what, path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trace export failed: %s\n", e.what());
    }
  };
  write("JSONL", args.get_or("trace", ""), [&](const std::string& p) {
    trace::write_jsonl_file(p, tracer);
  });
  write("chrome://tracing", args.get_or("trace-chrome", ""),
        [&](const std::string& p) {
          trace::write_chrome_trace_file(
              p, tracer, {.machine_name = machine.name,
                          .total_cpus = machine.cpus});
        });
  write("counter CSV", args.get_or("trace-csv", ""),
        [&](const std::string& p) {
          trace::write_counters_csv(p, tracer.summary());
        });
  print_stage_timings(tracer.summary());
  if (tracer.dropped() > 0) {
    std::fprintf(stderr,
                 "warning: %llu events past the buffer cap were dropped\n",
                 static_cast<unsigned long long>(tracer.dropped()));
  }
}

int cmd_report(const ArgParser& args) {
  const auto site = parse_site(args.get_or("site", ""));
  if (!site) return usage();
  print_run_summary("native-only baseline", core::native_baseline(*site));
  return 0;
}

int cmd_harvest(const ArgParser& args) {
  const auto site = parse_site(args.get_or("site", ""));
  if (!site) return usage();
  const auto cpus = static_cast<int>(args.get_int_or("cpus", 32));
  const auto sec = static_cast<Seconds>(args.get_int_or("sec1ghz", 120));
  const double cap = args.get_num_or("cap", 1.0);
  const std::string gate_s = args.get_or("gate", "queue");
  core::GatePolicy gate = core::GatePolicy::kQueueProtective;
  if (gate_s == "head") gate = core::GatePolicy::kHeadOnly;
  else if (gate_s == "always") gate = core::GatePolicy::kAlways;
  else if (gate_s != "queue") return usage();

  core::Scenario sc;
  sc.site = *site;
  auto stream =
      core::ProjectSpec::continual_stream(cpus, sec, cluster::site_span(*site));
  stream.utilization_cap = cap;
  stream.gate = gate;
  stream.fault_retry.max_retries =
      static_cast<int>(args.get_int_or("retry-max", 3));
  stream.fault_retry.backoff =
      static_cast<Seconds>(args.get_int_or("retry-backoff-s", 300));
  stream.fault_retry.checkpoint_interval =
      static_cast<Seconds>(args.get_int_or("checkpoint-s", 0));
  sc.project = stream;
  // Unplanned failures (istc fault subsystem); both MTBFs default to 0,
  // i.e. off, which keeps the run bit-identical to fault-free builds.
  sc.faults.crash_mtbf =
      static_cast<Seconds>(args.get_int_or("fault-mtbf-h", 0)) * 3600;
  sc.faults.crash_repair =
      static_cast<Seconds>(args.get_int_or("fault-repair-h", 4)) * 3600;
  sc.faults.node_mtbf =
      static_cast<Seconds>(args.get_int_or("fault-node-mtbf-h", 0)) * 3600;
  sc.faults.node_repair =
      static_cast<Seconds>(args.get_int_or("fault-node-repair-h", 2)) * 3600;
  sc.faults.node_cpus = static_cast<int>(args.get_int_or("fault-node-cpus", 128));
  sc.faults.seed = static_cast<std::uint64_t>(
      args.get_int_or("fault-seed", 0xFA1117));
  std::optional<trace::Tracer> tracer = make_tracer(args);
  // Telemetry flags (see README, Telemetry): a report bridges the
  // TraceSummary counters, so requesting one without any trace export
  // still attaches a counters-only tracer (cheap: no event records).
  const auto sample_s =
      static_cast<Seconds>(args.get_int_or("sample-interval-s", 0));
  const std::string report_path = args.get_or("report", "");
  const std::string series_path = args.get_or("series-csv", "");
  if (!tracer && !report_path.empty()) {
    tracer.emplace(trace::TraceMode::kCountersOnly);
  }
  if (tracer) sc.tracer = &*tracer;
  metrics::SamplerConfig sampler_cfg;
  sampler_cfg.interval = sample_s;
  metrics::RunMetrics run_metrics(sampler_cfg);
  if (!report_path.empty() || !series_path.empty() || sample_s > 0) {
    sc.metrics = &run_metrics;
  }
  const auto run = core::run_scenario(sc);
  if (tracer) export_traces(args, *tracer, run.machine);
  if (sc.metrics != nullptr) {
    const auto write = [](const char* what, const std::string& path,
                          auto&& writer) {
      if (path.empty()) return;
      try {
        writer(path);
        std::printf("wrote %s to %s\n", what, path.c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s export failed: %s\n", what, e.what());
      }
    };
    write("run report", report_path, [&](const std::string& p) {
      metrics::write_run_report_file(p, run, run_metrics);
    });
    write("series CSV", series_path, [&](const std::string& p) {
      metrics::write_series_csv(p, run_metrics);
    });
  }
  print_run_summary("continual interstitial harvest", run);
  std::printf("\nbaseline for comparison:\n\n");
  print_run_summary("native-only baseline", core::native_baseline(*site));
  return 0;
}

int cmd_plan(const ArgParser& args) {
  const auto site = parse_site(args.get_or("site", ""));
  if (!site) return usage();
  const double pc = args.get_num_or("petacycles", 0.0);
  if (pc <= 0) {
    std::fprintf(stderr, "plan requires --petacycles > 0\n");
    return 2;
  }
  core::AdvisorInputs in;
  in.machine = cluster::machine_spec(*site);
  in.native_utilization = core::native_utilization(*site);
  in.project_cycles = pc * cluster::kPeta;
  in.max_native_delay =
      static_cast<Seconds>(args.get_int_or("max-delay-s", 900));
  in.max_breakage = args.get_num_or("max-breakage", 1.10);
  in.downtime = cluster::site_downtime(*site);
  in.horizon = cluster::site_span(*site);
  const auto rec = core::advise(in);

  KeyValueBlock kv("recommended interstitial project");
  kv.add("machine", in.machine.name);
  kv.add("native utilization", in.native_utilization, 3);
  kv.add("CPUs per job", Table::integer(rec.cpus_per_job));
  kv.add("job runtime", format_duration(rec.job_runtime));
  kv.add("job size", std::to_string(rec.work_sec_at_1ghz) + " s @ 1 GHz");
  kv.add("jobs", Table::integer(static_cast<long long>(rec.jobs)));
  kv.add("breakage (space)", rec.breakage, 3);
  kv.add("breakage (time)", rec.time_breakage, 3);
  kv.add("predicted makespan",
         Table::num(rec.predicted_makespan_h, 1) + " h");
  kv.print();
  for (const auto& n : rec.notes) std::printf("note: %s\n", n.c_str());
  return 0;
}

int cmd_replay(const ArgParser& args) {
  const std::string path = args.get_or("swf", "");
  if (path.empty()) return usage();
  cluster::MachineSpec machine;
  machine.name = "trace machine";
  machine.cpus = static_cast<int>(args.get_int_or("cpus", 1024));
  machine.clock_ghz = args.get_num_or("clock", 1.0);
  const auto icpus = static_cast<int>(args.get_int_or("icpus", 8));
  const auto isec = static_cast<Seconds>(args.get_int_or("isec1ghz", 120));

  const auto log = workload::read_swf_file(path);
  if (log.empty()) {
    std::fprintf(stderr, "trace contains no usable jobs\n");
    return 1;
  }
  const SimTime span = log.last_submit() + 1;

  // Trace exports capture the with-interstitial replay (the run whose gate
  // decisions one typically wants to inspect).
  std::optional<trace::Tracer> tracer = make_tracer(args);

  auto simulate = [&](bool interstitial) {
    sim::Engine engine;
    sched::PolicySpec policy;
    sched::BatchScheduler scheduler(engine, cluster::Machine(machine),
                                    policy);
    if (interstitial && tracer) scheduler.set_tracer(&*tracer);
    scheduler.load(log);
    std::optional<core::InterstitialDriver> driver;
    if (interstitial) {
      driver.emplace(scheduler,
                     core::ProjectSpec::continual_stream(icpus, isec, span),
                     static_cast<workload::JobId>(log.size()));
    }
    engine.run();
    return scheduler.take_result(span);
  };
  print_run_summary("trace replay (native only)", simulate(false));
  std::printf("\n");
  print_run_summary("trace replay (with interstitial)", simulate(true));
  if (tracer) export_traces(args, *tracer, machine);
  return 0;
}

int cmd_grid(const ArgParser& args) {
  const std::string list =
      args.get_or("grid-machines", "ross,bluemtn,bluepac,synth1");
  auto fleet = grid::parse_fleet_list(list);
  if (!fleet) {
    std::fprintf(stderr, "unknown machine in --grid-machines '%s'\n",
                 list.c_str());
    return usage();
  }
  const auto policy =
      grid::parse_broker_policy(args.get_or("broker-policy", "best-fit"));
  if (!policy) return usage();
  const double quota_frac = args.get_num_or("project-quota", 0.25);
  const auto nprojects =
      static_cast<std::size_t>(args.get_int_or("grid-projects", 6));
  const auto jobs_each =
      static_cast<std::size_t>(args.get_int_or("grid-jobs", 300));
  const auto seed =
      static_cast<std::uint64_t>(args.get_int_or("grid-seed", 0x6121D));

  int fleet_cpus = 0;
  for (const auto& m : *fleet) fleet_cpus += m.spec.cpus;
  auto projects =
      grid::sweep_projects(nprojects, jobs_each, fleet_cpus, quota_frac, seed);

  grid::FleetConfig cfg;
  cfg.broker.policy = *policy;
  cfg.broker.latency =
      static_cast<Seconds>(args.get_int_or("grid-latency-s", 30));
  cfg.threads = static_cast<std::size_t>(args.get_int_or("threads", 0));
  const auto result = grid::run_fleet(std::move(*fleet), std::move(projects), cfg);

  std::printf("fleet: %zu machines, %d CPUs, broker %s, %zu threads\n",
              result.machines.size(), fleet_cpus, grid::broker_policy_name(*policy),
              cfg.threads > 0 ? cfg.threads : default_thread_count());
  std::printf("epochs %zu, dispatches %zu, fleet hash %016llx\n\n",
              result.epochs, result.dispatches.size(),
              static_cast<unsigned long long>(result.hash));
  Table machines("Fleet machines");
  machines.headers({"machine", "cpus", "native", "grid done", "bounced",
                    "killed", "util"});
  for (const auto& m : result.machines) {
    machines.row(
        {m.name, Table::integer(m.run.machine.cpus),
         Table::integer(static_cast<long long>(m.run.native_count())),
         Table::integer(static_cast<long long>(m.port.completed)),
         Table::integer(static_cast<long long>(m.port.bounced)),
         Table::integer(static_cast<long long>(m.port.killed)),
         Table::num(metrics::average_utilization(m.run.records,
                                                 m.run.machine.cpus, 0,
                                                 m.run.span),
                    3)});
  }
  machines.print();
  std::printf("\n");
  Table proj("Projects");
  proj.headers({"project", "cpus/job", "jobs", "done", "abandoned", "share",
                "quota", "harvest cpu-h"});
  for (std::size_t p = 0; p < result.projects.size(); ++p) {
    const auto& spec = result.projects[p];
    const auto& led = result.ledgers[p];
    proj.row({spec.name, Table::integer(spec.cpus_per_job),
              Table::integer(static_cast<long long>(spec.jobs)),
              Table::integer(static_cast<long long>(led.completed)),
              Table::integer(static_cast<long long>(led.abandoned())),
              Table::num(spec.share, 1), Table::integer(spec.quota_cpus),
              Table::num(static_cast<double>(led.harvested_cpu_sec) / 3600.0,
                         1)});
  }
  proj.print();
  std::printf("\nfleet fairness (Jain, harvested/share): %.3f\n",
              result.fairness);
  const std::string report_path = args.get_or("report", "");
  if (!report_path.empty()) {
    try {
      grid::write_fleet_report_file(report_path, result);
      std::printf("wrote fleet report to %s\n", report_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fleet report export failed: %s\n", e.what());
    }
  }
  return 0;
}

// -- serve / ask: the what-if admission-control service ----------------------

std::string make_ingest_request(const std::string& line) {
  return "{\"op\":\"ingest\",\"line\":\"" + service::json_escape(line) + "\"}";
}

std::optional<service::Endpoint> parse_endpoint(const ArgParser& args) {
  service::Endpoint ep;
  ep.unix_path = args.get_or("socket", "");
  ep.tcp_port = static_cast<int>(args.get_int_or("port", 0));
  if (ep.unix_path.empty() && ep.tcp_port <= 0) return std::nullopt;
  return ep;
}

int cmd_serve(const ArgParser& args) {
  const auto site = parse_site(args.get_or("site", ""));
  if (!site) return usage();
  const auto endpoint = parse_endpoint(args);
  if (!endpoint) return usage();

  // Wall-clock observability: --obs turns on the span recorder and the
  // stage profiler (feeding the stats verb and /metrics); --obs-trace PATH
  // additionally exports the span rings as chrome://tracing JSON on
  // shutdown.  Neither changes any reply byte (the purity tests run with
  // observability fully enabled).
  const std::string obs_trace = args.get_or("obs-trace", "");
  if (args.has("obs") || !obs_trace.empty()) obs::set_enabled(true);

  service::SessionConfig cfg;
  cfg.site = *site;
  cfg.snapshot_interval =
      static_cast<Seconds>(args.get_int_or("snapshot-interval-s", 21600));
  const auto stream_cpus = args.get_int_or("stream-cpus", 0);
  if (stream_cpus > 0) {
    cfg.stream = core::ProjectSpec::continual_stream(
        static_cast<int>(stream_cpus),
        static_cast<Seconds>(args.get_int_or("stream-sec1ghz", 120)),
        kTimeInfinity);
  }
  service::Session session(cfg);

  const std::string preload = args.get_or("preload", "");
  if (!preload.empty()) {
    std::ifstream in(preload);
    if (!in) {
      std::fprintf(stderr, "serve: cannot open %s\n", preload.c_str());
      return 1;
    }
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
      session.handle_line(make_ingest_request(line));
      ++lines;
    }
    std::printf("istc serve: preloaded %zu lines, %zu jobs accepted\n", lines,
                session.accepted_jobs());
  }

  try {
    service::Server server(session, *endpoint);
    if (!endpoint->unix_path.empty()) {
      std::printf("istc serve: listening on %s\n",
                  endpoint->unix_path.c_str());
    } else {
      std::printf("istc serve: listening on 127.0.0.1:%d\n",
                  endpoint->tcp_port);
    }
    std::fflush(stdout);
    server.serve();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve: %s\n", e.what());
    return 1;
  }
  std::printf("istc serve: shutdown after epoch %llu\n",
              static_cast<unsigned long long>(session.epoch()));
  if (!obs_trace.empty()) {
    // Exported after serve() returned: every connection thread is joined,
    // so the rings are quiesced (the recorder's export contract).
    try {
      obs::write_chrome_spans_file(obs_trace);
      const auto rec = obs::recorder_stats();
      std::printf("wrote %llu spans to %s (%llu dropped)\n",
                  static_cast<unsigned long long>(rec.recorded - rec.dropped),
                  obs_trace.c_str(),
                  static_cast<unsigned long long>(rec.dropped));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "span export failed: %s\n", e.what());
    }
  }
  return 0;
}

int cmd_ask(const ArgParser& args) {
  const auto endpoint = parse_endpoint(args);
  if (!endpoint) return usage();
  std::vector<std::string> requests(args.positionals().begin() + 1,
                                    args.positionals().end());
  if (requests.empty()) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) requests.push_back(line);
    }
  }
  if (requests.empty()) return usage();
  try {
    const auto replies = service::ask(*endpoint, requests);
    for (const auto& r : replies) std::printf("%s\n", r.c_str());
    // A transport that dropped replies is an error even if some arrived.
    return replies.size() == requests.size() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ask: %s\n", e.what());
    return 1;
  }
}

// -- top: the refreshing daemon dashboard ------------------------------------

/// Render one stats reply as a terminal dashboard frame.
void render_stats(const service::Value& v) {
  std::printf("istc top — %s  epoch %.0f  frontier %.0fs  uptime %.1fs\n",
              v.str_or("site", "?").c_str(), v.num_or("epoch", 0),
              v.num_or("frontier_s", 0), v.num_or("uptime_s", 0));
  const double lag = v.num_or("ingest_lag_s", -1);
  std::printf("baseline: %.0f accepted jobs, %.0f snapshots, %.0f rewinds, ",
              v.num_or("accepted_jobs", 0), v.num_or("snapshots", 0),
              v.num_or("rewinds", 0));
  if (lag < 0) {
    std::printf("no ingest yet\n");
  } else {
    std::printf("ingest lag %.1fs\n", lag);
  }
  if (const service::Value* c = v.find("counters")) {
    std::printf("queries  %8.0f  (%.0f errors)\n", c->num_or("queries", 0),
                c->num_or("query_errors", 0));
    std::printf("ingests  %8.0f  (%.0f accepted, %.0f rejected)\n",
                c->num_or("ingests", 0), c->num_or("ingests_accepted", 0),
                c->num_or("ingests_rejected", 0));
  }
  if (const service::Value* l = v.find("query_latency_us")) {
    std::printf("latency  %8.0f samples  p50 %.0fus  p90 %.0fus  p99 %.0fus\n",
                l->num_or("count", 0), l->num_or("p50_us", 0),
                l->num_or("p90_us", 0), l->num_or("p99_us", 0));
  }
  if (const service::Value* p = v.find("pool")) {
    std::printf("pool     busy %.0f (hwm %.0f)  queued %.0f (hwm %.0f)  "
                "executed %.0f\n",
                p->num_or("busy_workers", 0), p->num_or("busy_hwm", 0),
                p->num_or("queue_depth", 0), p->num_or("queue_hwm", 0),
                p->num_or("tasks_executed", 0));
  }
  if (const service::Value* o = v.find("obs")) {
    std::printf("spans    %s  %.0f recorded, %.0f dropped, %.0f threads\n",
                o->bool_or("enabled", false) ? "on " : "off",
                o->num_or("spans_recorded", 0), o->num_or("spans_dropped", 0),
                o->num_or("span_threads", 0));
  }
  if (const service::Value* prof = v.find("profile");
      prof != nullptr && prof->is_array() && !prof->array.empty()) {
    std::printf("\n%-16s %10s %12s %9s %9s %9s\n", "stage", "count",
                "total_us", "p50_us", "p90_us", "p99_us");
    for (const service::Value& s : prof->array) {
      std::printf("%-16s %10.0f %12.0f %9.0f %9.0f %9.0f\n",
                  s.str_or("stage", "?").c_str(), s.num_or("count", 0),
                  s.num_or("total_us", 0), s.num_or("p50_us", 0),
                  s.num_or("p90_us", 0), s.num_or("p99_us", 0));
    }
  }
}

int cmd_top(const ArgParser& args) {
  const auto endpoint = parse_endpoint(args);
  if (!endpoint) return usage();
  const double interval = args.get_num_or("interval-s", 2.0);
  const long long frames = args.get_int_or("count", 0);  // 0 = until ^C
  long long shown = 0;
  while (true) {
    std::vector<std::string> replies;
    try {
      replies = service::ask(*endpoint, {"{\"op\":\"stats\"}"});
    } catch (const std::exception& e) {
      std::fprintf(stderr, "top: %s\n", e.what());
      return 1;
    }
    if (replies.empty()) {
      std::fprintf(stderr, "top: daemon sent no reply\n");
      return 1;
    }
    const service::ParseResult parsed = service::parse(replies[0]);
    if (!parsed.ok() || !parsed.value.is_object() ||
        parsed.value.find("error") != nullptr) {
      std::fprintf(stderr, "top: bad stats reply: %s\n", replies[0].c_str());
      return 1;
    }
    if (shown > 0) std::printf("\x1b[H\x1b[J");  // home + clear-below
    render_stats(parsed.value);
    std::fflush(stdout);
    ++shown;
    if (frames > 0 && shown >= frames) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const std::string cmd = args.command();

  // Global: pin the worker-pool width before any command builds a pool.
  const auto threads = args.get_int_or("threads", 0);
  if (threads > 0) set_default_thread_count(static_cast<std::size_t>(threads));

  int rc;
  if (cmd == "report") rc = cmd_report(args);
  else if (cmd == "harvest" && args.has("grid")) rc = cmd_grid(args);
  else if (cmd == "harvest") rc = cmd_harvest(args);
  else if (cmd == "plan") rc = cmd_plan(args);
  else if (cmd == "replay") rc = cmd_replay(args);
  else if (cmd == "grid") rc = cmd_grid(args);
  else if (cmd == "serve") rc = cmd_serve(args);
  else if (cmd == "ask") rc = cmd_ask(args);
  else if (cmd == "top") rc = cmd_top(args);
  else return usage();

  for (const auto& e : args.errors()) {
    std::fprintf(stderr, "warning: %s\n", e.c_str());
  }
  for (const auto& f : args.unconsumed()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", f.c_str());
  }
  return rc;
}
