#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sched/scheduler.hpp"
#include "util/time.hpp"

/// \file fault.hpp
/// Unplanned failures.  The cluster's DowntimeCalendar models *planned*
/// maintenance the scheduler drains ahead of ("no running job ever
/// overlaps a window"); real machines also crash unannounced.  The
/// FaultInjector adds that layer: a deterministic, seeded timeline of
///
///   - whole-machine crashes — everything running dies and the machine is
///     down for a repair interval, and
///   - partial-capacity node failures — a node-sized slice of CPUs drops
///     out until repaired, killing whatever ran on it.
///
/// Failures flow through sched::BatchScheduler::fail_capacity (so the
/// free-CPU profile plans around the outage exactly like around running
/// jobs).  Killed natives are resubmitted here with their original
/// estimate — the lost work is the price of the crash.  Killed
/// interstitial jobs are the driver's business: its kill hook routes them
/// through ProjectSpec::fault_retry (bounded retries, backoff, optional
/// checkpoint/restart).
///
/// The whole timeline is pre-generated at construction from the seed, so
/// a run with faults is exactly as reproducible as one without.

namespace istc::fault {

/// Failure process parameters.  Inter-arrival times are exponential
/// (memoryless — the classic MTBF model); a zero MTBF disables that
/// failure class, and the default spec is entirely inert, which is what
/// keeps fault-free runs bit-identical to pre-fault builds.
struct FaultSpec {
  std::uint64_t seed = 0xFA1117;
  /// Mean time between whole-machine crashes; 0 = never.
  Seconds crash_mtbf = 0;
  /// Repair interval after a crash (machine fully down).
  Seconds crash_repair = 4 * kSecondsPerHour;
  /// Mean time between single-node failures; 0 = never.
  Seconds node_mtbf = 0;
  /// Repair interval after a node failure.
  Seconds node_repair = 2 * kSecondsPerHour;
  /// CPUs lost per node failure (clamped to the capacity still up).
  int node_cpus = 128;
  /// Failures are generated in [start, stop).
  SimTime start = 0;
  SimTime stop = kTimeInfinity;

  bool enabled() const { return crash_mtbf > 0 || node_mtbf > 0; }
  void check() const;
};

/// Tallies kept by the injector itself (the tracer-independent view; the
/// same quantities also reach TraceSummary when counters are on).
struct FaultStats {
  std::size_t crashes = 0;
  std::size_t node_failures = 0;
  std::size_t native_kills = 0;
  std::size_t interstitial_kills = 0;
  std::size_t native_resubmits = 0;
  /// CPU-seconds of executed native work thrown away (natives restart
  /// from scratch; interstitial loss is the driver's accounting).
  double native_cpu_seconds_lost = 0;
};

/// Schedules the failure timeline through the engine's typed event core
/// and fires each failure against the scheduler.  Construct after the
/// driver (order only affects event sequence numbers, not times) and keep
/// alive until the run drains.
class FaultInjector {
 public:
  FaultInjector(sched::BatchScheduler& scheduler, FaultSpec spec);

  /// Run-fork clone: attach to `scheduler` (the forked stack) and share
  /// `other`'s immutable timeline.  The forked engine's queue already
  /// holds the not-yet-fired kFaultFire events (each carrying its
  /// timeline index), so the clone schedules nothing — it only registers
  /// itself as the fault hook and carries the tallies forward.
  FaultInjector(sched::BatchScheduler& scheduler, const FaultInjector& other);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultSpec& spec() const { return spec_; }
  const FaultStats& stats() const { return stats_; }
  /// Failures on the pre-generated timeline (fired + still pending).
  std::size_t scheduled_faults() const { return timeline_->size(); }

 private:
  struct FaultEvent {
    SimTime time = 0;
    bool crash = false;  ///< whole-machine crash vs. node failure
  };

  void fire(std::size_t index);

  sched::BatchScheduler& scheduler_;
  FaultSpec spec_;
  /// Immutable once generated; shared between a run and its forks.
  std::shared_ptr<const std::vector<FaultEvent>> timeline_;
  FaultStats stats_;
};

}  // namespace istc::fault
