#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>

#include "trace/tracer.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace istc::fault {

namespace {

/// Resubmitted natives need ids that collide with neither the native log
/// (ids count up from 0) nor the interstitial stream (ids count up from
/// the log size): a duplicate id would let the dead original's stale
/// completion event finish its replacement early.  Ids from this base up
/// are reserved for fault resubmissions.
constexpr workload::JobId kResubmitIdBase = 0xF0000000u;

}  // namespace

void FaultSpec::check() const {
  ISTC_ASSERT(crash_mtbf >= 0);
  ISTC_ASSERT(node_mtbf >= 0);
  ISTC_ASSERT(start >= 0);
  ISTC_ASSERT(stop > start);
  if (crash_mtbf > 0) ISTC_ASSERT(crash_repair > 0);
  if (node_mtbf > 0) {
    ISTC_ASSERT(node_repair > 0);
    ISTC_ASSERT(node_cpus > 0);
  }
  // An unbounded horizon would make the pre-generated timeline infinite;
  // callers clamp stop to the run span (run_scenario does).
  if (enabled()) ISTC_ASSERT(stop < kTimeInfinity);
}

FaultInjector::FaultInjector(sched::BatchScheduler& scheduler, FaultSpec spec)
    : scheduler_(scheduler), spec_(spec) {
  spec_.check();
  // The whole timeline is drawn up front from per-class RNG streams, so
  // the crash process is independent of the node-failure process and both
  // depend only on the seed — never on what the simulation does.
  const Rng root(spec_.seed);
  std::vector<FaultEvent> timeline;
  const auto generate = [this, &root, &timeline](
                            Seconds mtbf, std::uint64_t stream, bool crash) {
    if (mtbf <= 0) return;
    Rng rng = root.fork(stream);
    SimTime t = spec_.start;
    for (;;) {
      const auto gap = static_cast<Seconds>(
          std::llround(rng.exponential(static_cast<double>(mtbf))));
      t += std::max<Seconds>(1, gap);
      if (t >= spec_.stop) break;
      timeline.push_back(FaultEvent{t, crash});
    }
  };
  generate(spec_.crash_mtbf, 1, true);
  generate(spec_.node_mtbf, 2, false);
  // Merge the streams; at equal times the crash fires first (it subsumes
  // any node failure anyway).
  std::sort(timeline.begin(), timeline.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.crash && !b.crash;
            });
  timeline_ =
      std::make_shared<const std::vector<FaultEvent>>(std::move(timeline));
  sim::Engine& engine = scheduler_.engine();
  engine.reserve_events(timeline_->size());
  // Typed fault events: the queue entry carries the timeline index, not a
  // closure, so a mid-run queue stays POD-only (run forks depend on it).
  engine.set_fault_hook([this](std::uint32_t i) { fire(i); });
  for (std::size_t i = 0; i < timeline_->size(); ++i) {
    engine.schedule_fault((*timeline_)[i].time, static_cast<std::uint32_t>(i));
  }
}

FaultInjector::FaultInjector(sched::BatchScheduler& scheduler,
                             const FaultInjector& other)
    : scheduler_(scheduler),
      spec_(other.spec_),
      timeline_(other.timeline_),
      stats_(other.stats_) {
  scheduler_.engine().set_fault_hook([this](std::uint32_t i) { fire(i); });
}

void FaultInjector::fire(std::size_t index) {
  const FaultEvent& ev = (*timeline_)[index];
  const SimTime now = scheduler_.engine().now();
  ISTC_ASSERT(now == ev.time);
  const int total = scheduler_.machine().total_cpus();
  const Seconds repair = ev.crash ? spec_.crash_repair : spec_.node_repair;
  const int cpus = ev.crash ? total : std::min(spec_.node_cpus, total);

  const std::vector<sched::JobRecord> victims = scheduler_.fail_capacity(
      cpus, now + repair,
      ev.crash ? sched::KillReason::kMachineCrash
               : sched::KillReason::kNodeFailure);

  ++(ev.crash ? stats_.crashes : stats_.node_failures);
  trace::Tracer* tracer = scheduler_.tracer();
  if (ISTC_TRACE_COUNTERS_ON(tracer)) {
    trace::TraceSummary& c = tracer->counters();
    ++c.faults_injected;
    ++(ev.crash ? c.fault_crashes : c.fault_node_failures);
  }
  if (ISTC_TRACE_EVENTS_ON(tracer)) {
    trace::TraceEvent e;
    e.time = now;
    e.kind = ev.crash ? trace::EventKind::kMachineCrash
                      : trace::EventKind::kNodeFailure;
    e.cpus = cpus;
    e.aux_time = now + repair;
    e.value = static_cast<std::int64_t>(victims.size());
    tracer->record(e);
  }

  // Requeue killed natives under fresh ids with their original runtime and
  // estimate: the batch system reruns them from scratch and the executed
  // CPU-time is lost.  Killed interstitials reach the driver through the
  // scheduler's kill hook instead (ProjectSpec::fault_retry).
  for (const sched::JobRecord& v : victims) {
    if (v.interstitial()) {
      ++stats_.interstitial_kills;
      continue;
    }
    ++stats_.native_kills;
    const double lost = static_cast<double>(v.job.cpus) *
                        static_cast<double>(v.end - v.start);
    stats_.native_cpu_seconds_lost += lost;
    workload::Job again = v.job;
    again.id = kResubmitIdBase + static_cast<workload::JobId>(
                                     stats_.native_resubmits);
    again.submit = now;
    scheduler_.submit(again);
    ++stats_.native_resubmits;
    if (ISTC_TRACE_COUNTERS_ON(tracer)) {
      trace::TraceSummary& c = tracer->counters();
      c.fault_cpu_sec_lost +=
          static_cast<std::uint64_t>(v.job.cpus) *
          static_cast<std::uint64_t>(v.end - v.start);
      ++c.fault_native_resubmits;
    }
  }
}

}  // namespace istc::fault
