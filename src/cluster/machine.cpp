#include "cluster/machine.hpp"

// Header-only logic; this TU anchors the library and keeps the door open
// for future out-of-line additions without touching every dependent target.

namespace istc::cluster {}
