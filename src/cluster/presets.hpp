#pragma once

#include <string>
#include <vector>

#include "cluster/machine.hpp"
#include "util/time.hpp"

/// \file presets.hpp
/// The three ASCI machines of the paper's Table 1.
///
///            Ross        Blue Mountain   Blue Pacific
///   site     Sandia      Los Alamos      Livermore
///   CPUs     1436        4662            926 (subset)
///   clock    0.588 GHz*  0.262 GHz       0.369 GHz
///   TCycles  0.844       1.221           0.342
///   util     .631        .790            .907
///   span     40.7 d      84.2 d          63 d
///   jobs     4,423       7,763           12,761
///   queue    PBS         LSF             DPCS
///   (*) 256 @ 533 MHz + 1180 @ 600 MHz; the paper treats the machine as
///       homogeneous at the capacity-weighted clock, and so do we.

namespace istc::cluster {

/// Site identifiers used across workload/scheduler presets.
enum class Site { kRoss, kBlueMountain, kBluePacific };

const char* site_name(Site site);
std::vector<Site> all_sites();

/// Static spec of the machine (no downtime attached).
MachineSpec machine_spec(Site site);

/// Target figures from Table 1 used for calibration and reporting.
struct SiteTargets {
  double utilization = 0.0;   ///< Table 1 "Utilization"
  double span_days = 0.0;     ///< Table 1 "times days"
  int jobs = 0;               ///< Table 1 "Jobs"
};

SiteTargets site_targets(Site site);

/// Log span of the site's trace in seconds.
SimTime site_span(Site site);

/// A deterministic maintenance calendar for the site: roughly weekly
/// half-day windows, seeded per site so every experiment sees the same
/// outages (the paper's utilization figures include outages).
DowntimeCalendar site_downtime(Site site);

/// Convenience: machine with its downtime calendar attached.
Machine make_machine(Site site);

}  // namespace istc::cluster
