#pragma once

#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

/// \file downtime.hpp
/// Whole-machine outage windows.
///
/// The paper's Fig. 4 shows utilization collapsing to zero during outages
/// and reports machine utilization "including outages".  We model outages
/// as scheduled whole-machine down windows: the scheduler will not start a
/// job (native or interstitial) whose *estimated* completion crosses the
/// next window, so by the time a window opens the machine has drained.
/// Because estimates always dominate actual runtimes (see workload), no
/// running job ever overlaps a window.

namespace istc::cluster {

struct DowntimeWindow {
  SimTime start = 0;
  SimTime end = 0;  // exclusive
  Seconds duration() const { return end - start; }
};

class DowntimeCalendar {
 public:
  DowntimeCalendar() = default;

  /// Windows must be non-empty and non-overlapping; they are sorted.
  explicit DowntimeCalendar(std::vector<DowntimeWindow> windows);

  bool empty() const { return windows_.empty(); }
  const std::vector<DowntimeWindow>& windows() const { return windows_; }

  /// Is t inside a down window?
  bool is_down(SimTime t) const;

  /// Start of the first window with start >= t (kTimeInfinity if none).
  SimTime next_down_start(SimTime t) const;

  /// End of the window containing t; t itself if the machine is up.
  SimTime up_again_at(SimTime t) const;

  /// May a job occupying [t, t + dur) run without touching a window?
  bool can_run(SimTime t, Seconds dur) const;

  /// Total down seconds inside [lo, hi).
  Seconds down_seconds(SimTime lo, SimTime hi) const;

  /// Generate periodic maintenance windows: one per `period` with the given
  /// duration, jittered by the rng, covering [0, span).
  static DowntimeCalendar periodic(Seconds period, Seconds duration,
                                   SimTime span, Rng& rng,
                                   double jitter_frac = 0.25);

 private:
  std::vector<DowntimeWindow> windows_;
};

}  // namespace istc::cluster
