#pragma once

#include <cstdint>
#include <string>

#include "cluster/downtime.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

/// \file machine.hpp
/// The machine model: N identical CPUs at clock C, space-shared (a job owns
/// its CPUs exclusively from start to completion — the paper's jobs are
/// non-preemptive and dedicated).

namespace istc::cluster {

/// Work is measured in clock cycles per CPU, the paper's machine-neutral
/// unit (1 peta-cycle = 1e15 ticks).  A "120 s @ 1 GHz" interstitial job
/// carries 120e9 cycles per CPU and runs 120/C seconds on a C-GHz machine.
using Cycles = double;

inline constexpr Cycles kGiga = 1e9;
inline constexpr Cycles kTera = 1e12;
inline constexpr Cycles kPeta = 1e15;

/// Static description of a machine (Table 1 row).
struct MachineSpec {
  std::string name;
  std::string site;
  std::string queue_system;  ///< e.g. "PBS", "LSF", "DPCS"
  int cpus = 0;
  double clock_ghz = 0.0;

  /// Machine capacity proxy, Tera-cycles/s = cpus * clock (Table 1).
  double tera_cycles() const {
    return static_cast<double>(cpus) * clock_ghz * kGiga / kTera;
  }

  /// Seconds to execute `work` cycles on one CPU of this machine,
  /// rounded up so work is never lost; at least 1 s.
  Seconds runtime_for(Cycles work) const {
    ISTC_EXPECTS(clock_ghz > 0);
    const double secs = work / (clock_ghz * kGiga);
    auto s = static_cast<Seconds>(secs);
    if (static_cast<double>(s) < secs) ++s;
    return s > 0 ? s : 1;
  }

  /// Cycles one CPU executes in `dur` seconds.
  Cycles cycles_in(Seconds dur) const {
    return static_cast<double>(dur) * clock_ghz * kGiga;
  }
};

/// Dynamic allocation state of a machine during simulation.
/// Invariant: 0 <= in_use <= cpus at all times (checked).
class Machine {
 public:
  Machine(MachineSpec spec, DowntimeCalendar downtime = {})
      : spec_(std::move(spec)), downtime_(std::move(downtime)) {
    ISTC_EXPECTS(spec_.cpus > 0);
  }

  const MachineSpec& spec() const { return spec_; }
  const DowntimeCalendar& downtime() const { return downtime_; }

  int total_cpus() const { return spec_.cpus; }
  int in_use() const { return in_use_; }
  int free_cpus() const { return spec_.cpus - in_use_; }

  /// Instantaneous utilization in [0, 1].
  double utilization() const {
    return static_cast<double>(in_use_) / static_cast<double>(spec_.cpus);
  }

  void allocate(int cpus) {
    ISTC_EXPECTS(cpus > 0);
    ISTC_EXPECTS(in_use_ + cpus <= spec_.cpus);
    in_use_ += cpus;
  }

  void release(int cpus) {
    ISTC_EXPECTS(cpus > 0);
    ISTC_EXPECTS(cpus <= in_use_);
    in_use_ -= cpus;
  }

  /// May a job of `cpus` run in [t, t+dur) w.r.t. space and downtime?
  bool can_start(int cpus, SimTime t, Seconds estimated_dur) const {
    return cpus <= free_cpus() && downtime_.can_run(t, estimated_dur);
  }

 private:
  MachineSpec spec_;
  DowntimeCalendar downtime_;
  int in_use_ = 0;
};

}  // namespace istc::cluster
