#include "cluster/presets.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace istc::cluster {

const char* site_name(Site site) {
  switch (site) {
    case Site::kRoss: return "Ross";
    case Site::kBlueMountain: return "Blue Mountain";
    case Site::kBluePacific: return "Blue Pacific";
  }
  ISTC_ASSERT(false);
  return "?";
}

std::vector<Site> all_sites() {
  return {Site::kRoss, Site::kBlueMountain, Site::kBluePacific};
}

MachineSpec machine_spec(Site site) {
  switch (site) {
    case Site::kRoss:
      // 256 @ 0.533 + 1180 @ 0.600 -> capacity-weighted 0.588 GHz.
      return {.name = "Ross",
              .site = "Sandia",
              .queue_system = "PBS",
              .cpus = 1436,
              .clock_ghz = 0.588};
    case Site::kBlueMountain:
      return {.name = "Blue Mountain",
              .site = "Los Alamos",
              .queue_system = "LSF",
              .cpus = 4662,
              .clock_ghz = 0.262};
    case Site::kBluePacific:
      return {.name = "Blue Pacific",
              .site = "Livermore",
              .queue_system = "DPCS",
              .cpus = 926,
              .clock_ghz = 0.369};
  }
  ISTC_ASSERT(false);
  return {};
}

SiteTargets site_targets(Site site) {
  switch (site) {
    case Site::kRoss: return {.utilization = 0.631, .span_days = 40.7, .jobs = 4423};
    case Site::kBlueMountain:
      return {.utilization = 0.790, .span_days = 84.2, .jobs = 7763};
    case Site::kBluePacific:
      return {.utilization = 0.907, .span_days = 63.0, .jobs = 12761};
  }
  ISTC_ASSERT(false);
  return {};
}

SimTime site_span(Site site) {
  return static_cast<SimTime>(site_targets(site).span_days *
                              static_cast<double>(kSecondsPerDay));
}

DowntimeCalendar site_downtime(Site site) {
  // ~10-hour maintenance window roughly every 10 days: about 4% downtime,
  // consistent with the Fig. 4 outage dips.  Seeded per site.
  Rng rng(0xD0DEC0DEULL + static_cast<std::uint64_t>(site) * 977);
  return DowntimeCalendar::periodic(/*period=*/days(10), /*duration=*/hours(10),
                                    site_span(site), rng);
}

Machine make_machine(Site site) {
  return Machine(machine_spec(site), site_downtime(site));
}

}  // namespace istc::cluster
