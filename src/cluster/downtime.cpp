#include "cluster/downtime.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace istc::cluster {

DowntimeCalendar::DowntimeCalendar(std::vector<DowntimeWindow> windows)
    : windows_(std::move(windows)) {
  std::sort(windows_.begin(), windows_.end(),
            [](const DowntimeWindow& a, const DowntimeWindow& b) {
              return a.start < b.start;
            });
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    ISTC_EXPECTS(windows_[i].end > windows_[i].start);
    if (i > 0) ISTC_EXPECTS(windows_[i].start >= windows_[i - 1].end);
  }
}

bool DowntimeCalendar::is_down(SimTime t) const {
  // First window with start > t; the candidate container is its predecessor.
  auto it = std::upper_bound(
      windows_.begin(), windows_.end(), t,
      [](SimTime v, const DowntimeWindow& w) { return v < w.start; });
  if (it == windows_.begin()) return false;
  --it;
  return t < it->end;
}

SimTime DowntimeCalendar::next_down_start(SimTime t) const {
  auto it = std::lower_bound(
      windows_.begin(), windows_.end(), t,
      [](const DowntimeWindow& w, SimTime v) { return w.start < v; });
  return it == windows_.end() ? kTimeInfinity : it->start;
}

SimTime DowntimeCalendar::up_again_at(SimTime t) const {
  auto it = std::upper_bound(
      windows_.begin(), windows_.end(), t,
      [](SimTime v, const DowntimeWindow& w) { return v < w.start; });
  if (it == windows_.begin()) return t;
  --it;
  return t < it->end ? it->end : t;
}

bool DowntimeCalendar::can_run(SimTime t, Seconds dur) const {
  ISTC_EXPECTS(dur >= 0);
  if (is_down(t)) return false;
  return t + dur <= next_down_start(t);
}

Seconds DowntimeCalendar::down_seconds(SimTime lo, SimTime hi) const {
  Seconds total = 0;
  for (const auto& w : windows_) {
    const SimTime a = std::max(lo, w.start);
    const SimTime b = std::min(hi, w.end);
    if (b > a) total += b - a;
  }
  return total;
}

DowntimeCalendar DowntimeCalendar::periodic(Seconds period, Seconds duration,
                                            SimTime span, Rng& rng,
                                            double jitter_frac) {
  ISTC_EXPECTS(period > 0 && duration > 0 && duration < period);
  std::vector<DowntimeWindow> windows;
  for (SimTime base = period; base + duration < span; base += period) {
    const auto jitter = static_cast<Seconds>(
        rng.uniform(-jitter_frac, jitter_frac) *
        static_cast<double>(period));
    SimTime start = base + jitter;
    if (!windows.empty()) start = std::max(start, windows.back().end + 1);
    if (start + duration >= span) break;
    windows.push_back({start, start + duration});
  }
  return DowntimeCalendar(std::move(windows));
}

}  // namespace istc::cluster
