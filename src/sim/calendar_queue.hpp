#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

/// \file calendar_queue.hpp
/// A two-rung calendar/ladder queue over the typed 24-byte Event.
///
/// The binary heap of event_queue.hpp pays O(log n) word-copy sifts per
/// operation, and n is large: a replay preloads every submission, so the
/// heap holds thousands of entries for months of simulated time.  The
/// workloads' event times are near-uniform (finish times spread across the
/// trace span), which is the textbook case for a calendar queue: hash the
/// time into a bucket, keep only the bucket at the cursor sorted, and both
/// push and pop become O(1) amortized.
///
/// Layout (widths are powers of two so bucket indexing is a shift):
///   - `cur_`: the events at the cursor, sorted ascending with a head
///     index — pop reads `cur_[head_++]`, and a "gap push" at or before
///     the cursor (events scheduled for ~now: wakes, same-time finishes)
///     is a sorted insert.  Ascending order makes the worst gap case —
///     a batch of same-time events, where each arrival is the new maximum
///     of its timestamp run — an O(1) push_back instead of a full-vector
///     memmove.
///   - rung 1: 1024 buckets x 64 s — about 18 hours of calendar directly
///     bucketed ahead of the cursor.
///   - rung 2: 1024 buckets x 65536 s (~18 h each, ~2.1 simulated years
///     total) — a whole job log lands here at load time; each bucket is
///     spread across rung 1 when the cursor reaches it.
///   - `far_`: unsorted overflow beyond rung 2's horizon; re-anchors the
///     wheel when everything nearer has drained (never hit by the
///     in-repo workloads, exercised by the property tests).
///
/// Every event is touched a bounded number of times (push, at most one
/// rung-2 -> rung-1 spread, one bucket sort share, pop), hence the O(1)
/// amortized bound.  Ordering is the exact (time, seq) contract of
/// event_before(): equal-time events meet in the same bucket and the sort
/// is on the full key, so FIFO-among-equal-times survives bucketing and
/// schedules stay bit-identical to the binary heap's (pinned by the golden
/// hashes in tests/trace/test_determinism).
///
/// Unlike the heap, a calendar allocates while buckets warm up to their
/// working capacity (counted in heap_allocations()); once warm, the
/// bucket vectors recycle modulo the wheel size and the steady state
/// allocates nothing (asserted in tests/sim/test_event_queue.cpp).

namespace istc::sim {

class CalendarEventQueue {
 public:
  static constexpr int kRung1Shift = 6;   ///< 64 s rung-1 buckets
  static constexpr int kRung2Shift = 16;  ///< 65536 s rung-2 buckets
  static constexpr int kSlotShift = kRung2Shift - kRung1Shift;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotShift;
  static constexpr std::int64_t kSlotMask =
      static_cast<std::int64_t>(kSlots) - 1;

  static_assert((-9 >> 1) == -5, "bucket math relies on arithmetic shift");

  CalendarEventQueue() : rung1_(kSlots), rung2_(kSlots) {}
  CalendarEventQueue(const CalendarEventQueue&) = delete;
  CalendarEventQueue& operator=(const CalendarEventQueue&) = delete;

  ~CalendarEventQueue() {
    dispose_events(cur_);
    for (auto& bucket : rung1_) dispose_events(bucket);
    for (auto& bucket : rung2_) dispose_events(bucket);
    dispose_events(far_);
  }

  /// Pre-size the callback slab and the sorted window.  The bucket wheels
  /// warm up on first contact instead (their working size depends on the
  /// event-time distribution, not the event count).
  void reserve(std::size_t n) {
    slab_.reserve(n);
    cur_.reserve(std::min(n, kSlots * 4));
  }

  void push_typed(SimTime t, EventType type, std::uint32_t arg) {
    ISTC_EXPECTS(type != EventType::kCallback);
    Event e;
    e.time = t;
    e.type = type;
    e.arg = arg;
    push_entry(e);
  }

  template <class F>
  void push_callback(SimTime t, F&& fn) {
    Event e;
    e.time = t;
    e.type = EventType::kCallback;
    e.arg = slab_.put(std::forward<F>(fn));
    push_entry(e);
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  SimTime next_time() const {
    ISTC_EXPECTS(size_ > 0);
    return cur_[head_].time;
  }

  /// Remove and return the earliest event per the (time, seq) contract.
  Event pop() {
    ISTC_EXPECTS(size_ > 0);
    const Event top = cur_[head_++];
    --size_;
    if (head_ == cur_.size()) {
      cur_.clear();
      head_ = 0;
      if (size_ == 0) {
        anchored_ = false;  // fully drained: re-anchor on the next push
      } else {
        advance_window();
      }
    }
    return top;
  }

  /// Claim the payload of a popped kCallback event (see CallbackSlab).
  CallbackSlot take_callback(const Event& e) {
    ISTC_EXPECTS(e.type == EventType::kCallback);
    return slab_.take(e.arg);
  }

  /// Run-fork support: become a copy of `other`'s pending events and push
  /// counter (requires both slabs payload-free, see EventQueue).
  void assign_from(const CalendarEventQueue& other) {
    ISTC_EXPECTS(other.slab_.live() == 0);
    ISTC_EXPECTS(slab_.live() == 0);
    cur_ = other.cur_;
    head_ = other.head_;
    rung1_ = other.rung1_;
    rung2_ = other.rung2_;
    far_ = other.far_;
    size_ = other.size_;
    seq_ = other.seq_;
    peak_size_ = other.peak_size_;
    anchored_ = other.anchored_;
    cursor_ = other.cursor_;
    limit1_ = other.limit1_;
    cursor2_ = other.cursor2_;
    limit2_ = other.limit2_;
  }

  std::uint64_t heap_allocations() const {
    return grows_ + slab_.grows() + slab_.boxed();
  }
  std::uint64_t boxed_callbacks() const { return slab_.boxed(); }
  std::uint64_t live_callbacks() const { return slab_.live(); }
  std::size_t peak_size() const { return peak_size_; }

 private:
  static std::int64_t bucket1(SimTime t) { return t >> kRung1Shift; }
  static std::int64_t bucket2(SimTime t) { return t >> kRung2Shift; }

  void push_entry(Event e) {
    e.seq = seq_++;
    ++size_;
    if (size_ > peak_size_) peak_size_ = size_;
    if (!anchored_) anchor(bucket1(e.time));
    route(e);
    // A push into a drained queue may land in a rung; restore the
    // invariant that the minimum is always at cur_[head_].
    if (head_ == cur_.size()) advance_window();
  }

  /// Place the wheel so the cursor sits just before the bucket containing
  /// `b1`: the anchoring event is pulled into cur_ by the very next
  /// advance with a one-bucket scan.  Anchoring at the rung-2 slot
  /// boundary instead would make a drain/re-anchor cycle (one live event
  /// hopping forward, e.g. a self-perpetuating chain) walk every empty
  /// bucket between the slot start and b1 on each hop.
  void anchor(std::int64_t b1) {
    const std::int64_t c2 = b1 >> kSlotShift;
    cursor2_ = c2 + 1;
    limit2_ = cursor2_ + static_cast<std::int64_t>(kSlots);
    limit1_ = cursor2_ << kSlotShift;
    cursor_ = b1 - 1;
    anchored_ = true;
  }

  void route(const Event& e) {
    const std::int64_t b1 = bucket1(e.time);
    if (b1 <= cursor_) {
      // At or before the cursor (typically "now"): keep the live window
      // sorted.  The common cases are O(1): a same-time arrival is the new
      // maximum of its run (push_back when nothing later is windowed), and
      // the window is near-empty the rest of the time.
      const auto it = std::lower_bound(cur_.begin() + head_, cur_.end(), e,
                                       event_before);
      if (cur_.size() == cur_.capacity()) ++grows_;
      cur_.insert(it, e);
    } else if (b1 < limit1_) {
      push_bucket(rung1_[b1 & kSlotMask], e);
    } else if (bucket2(e.time) < limit2_) {
      // b1 >= limit1_ implies b2 >= cursor2_ (limit1_ == cursor2_ << 10
      // whenever control is outside advance_window), so the slot is still
      // ahead of the rung-2 scan.
      push_bucket(rung2_[bucket2(e.time) & kSlotMask], e);
    } else {
      push_bucket(far_, e);
    }
  }

  void push_bucket(std::vector<Event>& bucket, const Event& e) {
    if (bucket.size() == bucket.capacity()) ++grows_;
    bucket.push_back(e);
  }

  /// cur_ is empty but events remain: advance the cursor to the next
  /// non-empty rung-1 bucket, pulling from rung 2 / far_ as the nearer
  /// tiers drain.  Scan lengths are bounded by the wheel size.
  void advance_window() {
    ISTC_ASSERT(head_ == cur_.size() && size_ > 0);
    cur_.clear();
    head_ = 0;
    for (;;) {
      while (cursor_ + 1 < limit1_) {
        std::vector<Event>& bucket = rung1_[(cursor_ + 1) & kSlotMask];
        ++cursor_;
        if (bucket.empty()) continue;
        if (cur_.capacity() < bucket.size()) ++grows_;
        cur_.assign(bucket.begin(), bucket.end());
        bucket.clear();  // keeps its capacity for the next wheel lap
        std::sort(cur_.begin(), cur_.end(), event_before);
        return;
      }
      bool spread = false;
      while (cursor2_ < limit2_) {
        std::vector<Event>& bucket = rung2_[cursor2_ & kSlotMask];
        const std::int64_t c2 = cursor2_++;
        limit1_ = (c2 + 1) << kSlotShift;
        cursor_ = (c2 << kSlotShift) - 1;
        if (bucket.empty()) continue;
        for (const Event& e : bucket) {
          push_bucket(rung1_[bucket1(e.time) & kSlotMask], e);
        }
        bucket.clear();
        spread = true;
        break;
      }
      if (spread) continue;
      // Both rungs drained: re-anchor at the earliest far event and
      // partition the overflow into rung 2.
      ISTC_ASSERT(!far_.empty());
      std::int64_t min2 = bucket2(far_.front().time);
      for (const Event& e : far_) min2 = std::min(min2, bucket2(e.time));
      cursor2_ = min2;
      limit2_ = min2 + static_cast<std::int64_t>(kSlots);
      limit1_ = min2 << kSlotShift;
      cursor_ = limit1_ - 1;
      std::size_t keep = 0;
      for (const Event& e : far_) {
        if (bucket2(e.time) < limit2_) {
          push_bucket(rung2_[bucket2(e.time) & kSlotMask], e);
        } else {
          far_[keep++] = e;
        }
      }
      far_.resize(keep);
    }
  }

  void dispose_events(const std::vector<Event>& events) {
    for (const Event& e : events) {
      if (e.type == EventType::kCallback) slab_.dispose(e.arg);
    }
  }

  std::vector<Event> cur_;  ///< sorted window (ascending), min at head_
  std::size_t head_ = 0;    ///< first live element of cur_
  std::vector<std::vector<Event>> rung1_;  ///< 64 s buckets
  std::vector<std::vector<Event>> rung2_;  ///< 65536 s buckets
  std::vector<Event> far_;                 ///< beyond rung 2's horizon
  CallbackSlab slab_;
  std::size_t size_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t grows_ = 0;
  std::size_t peak_size_ = 0;
  /// Wheel geometry, in bucket units.  Invariants at rest: events with
  /// rung-1 bucket <= cursor_ are in cur_ (or popped); rung 1 covers
  /// (cursor_, limit1_); rung 2 covers [cursor2_, limit2_) with
  /// limit1_ == cursor2_ << kSlotShift; far_ holds the rest.
  bool anchored_ = false;
  std::int64_t cursor_ = -1;
  std::int64_t limit1_ = 0;
  std::int64_t cursor2_ = 0;
  std::int64_t limit2_ = 0;
};

}  // namespace istc::sim
