#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"

/// \file event_queue.hpp
/// The typed event core: a monotone priority queue of timestamped events.
///
/// Ordering contract: events fire in strictly increasing (time, seq) order,
/// where `seq` is the queue's push counter.  Ties on `time` therefore fire
/// in insertion (FIFO) order, independent of heap internals, which is what
/// makes replays deterministic and lets the tracer mirror the key.
///
/// The steady state of a multi-month replay pushes and pops millions of
/// events, so the hot representation is a flat binary heap of trivially
/// copyable 24-byte `Event` entries — sifting is plain word copies, and
/// with a `reserve()`d backing vector a push/pop cycle performs zero heap
/// allocations.  The simulation's actual event kinds (job submit, job
/// finish, scheduler wake) carry a 32-bit argument instead of a captured
/// closure; arbitrary callbacks remain available through a small-buffer
/// slot slab kept off the heap (arg indexes into it, slots recycle through
/// a free list) that stores trivially copyable callables inline and boxes
/// the rest (counted, so tests can assert the steady state allocates
/// nothing).
///
/// `LegacyEventQueue` below is the previous `std::function`-based
/// implementation, kept in-binary as the A/B baseline for
/// bench/micro_engine (`Scenario::typed_events = false` selects it).

namespace istc::sim {

/// Event payloads for the generic-callback fallback path.
using EventFn = std::function<void()>;

/// The simulation's event kinds.  kCallback is the type-erased fallback
/// that keeps the generic `schedule(t, fn)` API working; the typed kinds
/// cover every event the scheduler stack schedules in steady state.
enum class EventType : std::uint8_t {
  kCallback,        ///< invoke the stored callable (tests, benches, glue)
  kJobSubmit,       ///< arg = submission index (JobEventSink::job_submit)
  kJobFinish,       ///< arg = job-store slot (JobEventSink::job_finish)
  kSchedulerWake,   ///< no payload; exists to trigger a quiescent pass
  kSample,          ///< no payload; invokes the engine's sample hook only
  kCapacityRepair,  ///< arg = outage id (JobEventSink::capacity_repair)
  kFaultFire,       ///< arg = fault-timeline index (engine fault hook)
  kGridArrival,     ///< arg = delivery-log index (engine grid hook)
};

inline constexpr int kNumEventTypes = 8;

/// Which event-queue representation an engine runs on.  All three honor
/// the same (time, seq) ordering contract and are pinned to identical
/// golden schedule hashes; they differ only in cost.
enum class QueueImpl : std::uint8_t {
  kLegacy,      ///< std::function heap (pre-rewrite baseline)
  kBinaryHeap,  ///< typed flat binary heap (PR 3), O(log n) push/pop
  kCalendar,    ///< two-rung calendar/ladder queue, O(1) amortized
};

/// Small-buffer storage for kCallback events.  Trivially copyable
/// callables up to kInlineBytes live inline (the heap then relocates them
/// with the entry, no allocation); anything larger or non-trivial is boxed
/// on the heap and the box pointer stored instead.  The slot itself stays
/// trivially copyable either way — ownership of a box transfers with the
/// bytes, and exactly one of invoke()/dispose() must be called per stored
/// callable (the queue guarantees this).
class CallbackSlot {
 public:
  static constexpr std::size_t kInlineBytes = 24;
  static constexpr std::size_t kAlign = 8;

  /// Store `fn`; bumps `boxed_count` when the callable had to be boxed.
  template <class F>
  void emplace(F&& fn, std::uint64_t& boxed_count) {
    using D = std::decay_t<F>;
    if constexpr (std::is_trivially_copyable_v<D> &&
                  std::is_trivially_destructible_v<D> &&
                  sizeof(D) <= kInlineBytes && alignof(D) <= kAlign) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      op_ = &inline_op<D>;
    } else {
      D* boxed = new D(std::forward<F>(fn));
      std::memcpy(buf_, &boxed, sizeof boxed);
      op_ = &boxed_op<D>;
      ++boxed_count;
    }
  }

  /// Run the callable and release any box.  Call at most once.
  void invoke() { op_(buf_, Op::kInvoke); }

  /// Release any box without running.  Call at most once, instead of
  /// invoke() (the queue destructor uses this for undrained events).
  void dispose() { op_(buf_, Op::kDispose); }

 private:
  enum class Op : std::uint8_t { kInvoke, kDispose };
  using OpFn = void (*)(void*, Op);

  template <class D>
  static void inline_op(void* buf, Op op) {
    if (op == Op::kInvoke) (*std::launder(reinterpret_cast<D*>(buf)))();
    // Trivially destructible by construction: dispose is a no-op.
  }

  template <class D>
  static void boxed_op(void* buf, Op op) {
    D* boxed;
    std::memcpy(&boxed, buf, sizeof boxed);
    if (op == Op::kInvoke) (*boxed)();
    delete boxed;
  }

  OpFn op_ = nullptr;
  alignas(kAlign) unsigned char buf_[kInlineBytes];
};

/// The kCallback payload slab shared by the typed queues: slots recycle
/// through a free list, trivially copyable callables live inline, the rest
/// are boxed and counted.  Separate from the queue's entry storage so both
/// the binary heap and the calendar queue reuse the same machinery.
class CallbackSlab {
 public:
  void reserve(std::size_t n) {
    slots_.reserve(n);
    free_slots_.reserve(n);
  }

  /// Store `fn` and return its slot index (an Event::arg).
  template <class F>
  std::uint32_t put(F&& fn) {
    const std::uint32_t idx = acquire_slot();
    slots_[idx].emplace(std::forward<F>(fn), boxed_);
    ++live_;
    return idx;
  }

  /// Claim slot `idx`: recycle it and return a copy of the payload.  The
  /// slot is released *before* the caller invokes, so a callback that
  /// schedules new events may reuse it — take the copy, then invoke() (or
  /// dispose()) it exactly once.
  CallbackSlot take(std::uint32_t idx) {
    const CallbackSlot slot = slots_[idx];
    if (free_slots_.size() == free_slots_.capacity()) ++grows_;
    free_slots_.push_back(idx);
    --live_;
    return slot;
  }

  /// Release an undrained slot without running it (queue destructors).
  void dispose(std::uint32_t idx) {
    slots_[idx].dispose();
    --live_;
  }

  /// Backing-vector growth events (allocations).
  std::uint64_t grows() const { return grows_; }
  /// Callables that had to be boxed out of line (allocations).
  std::uint64_t boxed() const { return boxed_; }
  /// Slots currently holding an unclaimed payload.  Run forks require
  /// zero: a queue with no live callbacks is plain copyable data.
  std::uint64_t live() const { return live_; }

 private:
  std::uint32_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t idx = free_slots_.back();
      free_slots_.pop_back();
      return idx;
    }
    if (slots_.size() == slots_.capacity()) ++grows_;
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  std::vector<CallbackSlot> slots_;
  std::vector<std::uint32_t> free_slots_;  ///< recycled slab indices
  std::uint64_t grows_ = 0;
  std::uint64_t boxed_ = 0;
  std::uint64_t live_ = 0;
};

/// One queue entry.  Trivially copyable and small on purpose: heap sifts
/// move these with plain assignment, never a type-erased move constructor,
/// and pop cost scales with entry size.  Callback payloads live in the
/// queue's slot slab (arg = slot index), not in the entry.
struct Event {
  SimTime time = 0;
  std::uint64_t seq = 0;
  std::uint32_t arg = 0;  ///< job id / submit index / callback slot index
  EventType type = EventType::kCallback;
};

static_assert(std::is_trivially_copyable_v<Event>,
              "heap sifting relies on memcpy-equivalent entry moves");
static_assert(sizeof(Event) <= 24,
              "keep heap entries small: sift cost is copy cost");

/// The ordering contract, shared by every queue implementation.
inline bool event_before(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  ~EventQueue() {
    for (const Event& e : heap_) {
      if (e.type == EventType::kCallback) slab_.dispose(e.arg);
    }
  }

  /// Pre-size the backing storage (heap entries, callback slots, free
  /// list); pushes within capacity never allocate.  (The reservation
  /// itself is deliberately not counted as a queue allocation — it is the
  /// amortization API.)
  void reserve(std::size_t n) {
    heap_.reserve(n);
    slab_.reserve(n);
  }

  /// Run-fork support: become a copy of `other`'s pending events and push
  /// counter.  Requires both queues to hold no live callback payloads —
  /// with the slab empty the queue is plain trivially copyable data, which
  /// is what makes forking a mid-run simulation cheap and exact.
  void assign_from(const EventQueue& other) {
    ISTC_EXPECTS(other.slab_.live() == 0);
    ISTC_EXPECTS(slab_.live() == 0);
    heap_ = other.heap_;
    seq_ = other.seq_;
    peak_size_ = other.peak_size_;
  }

  void push_typed(SimTime t, EventType type, std::uint32_t arg) {
    ISTC_EXPECTS(type != EventType::kCallback);
    Event e;
    e.time = t;
    e.type = type;
    e.arg = arg;
    push_entry(e);
  }

  template <class F>
  void push_callback(SimTime t, F&& fn) {
    Event e;
    e.time = t;
    e.type = EventType::kCallback;
    e.arg = slab_.put(std::forward<F>(fn));
    push_entry(e);
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  std::size_t capacity() const { return heap_.capacity(); }

  SimTime next_time() const {
    ISTC_EXPECTS(!heap_.empty());
    return heap_.front().time;
  }

  /// Remove and return the earliest event per the (time, seq) contract.
  /// A kCallback entry's payload stays in the slab until the caller claims
  /// it with take_callback() — exactly once per popped callback event.
  Event pop() {
    ISTC_EXPECTS(!heap_.empty());
    Event top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return top;
  }

  /// Claim the payload of a popped kCallback event and recycle its slot.
  /// The slot is released *before* the caller invokes, so a callback that
  /// schedules new events may reuse it — take the copy, then invoke() (or
  /// dispose()) it exactly once.
  CallbackSlot take_callback(const Event& e) {
    ISTC_EXPECTS(e.type == EventType::kCallback);
    return slab_.take(e.arg);
  }

  /// Heap allocations performed by the queue since construction: backing-
  /// vector growth plus boxed (out-of-line) callbacks.  Zero in steady
  /// state on the typed path — the acceptance criterion of the rewrite.
  std::uint64_t heap_allocations() const {
    return grows_ + slab_.grows() + slab_.boxed();
  }
  std::uint64_t boxed_callbacks() const { return slab_.boxed(); }

  /// Callback payloads pushed but not yet claimed (see CallbackSlab).
  std::uint64_t live_callbacks() const { return slab_.live(); }

  /// High-water mark of simultaneously queued events.
  std::size_t peak_size() const { return peak_size_; }

 private:
  static bool before(const Event& a, const Event& b) {
    return event_before(a, b);
  }

  void push_entry(Event& e) {
    e.seq = seq_++;
    if (heap_.size() == heap_.capacity()) ++grows_;
    heap_.push_back(e);
    if (heap_.size() > peak_size_) peak_size_ = heap_.size();
    sift_up(heap_.size() - 1);
  }

  void sift_up(std::size_t i) {
    Event e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    Event e = heap_[i];
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
      if (!before(heap_[child], e)) break;
      heap_[i] = heap_[child];
      i = child;
    }
    heap_[i] = e;
  }

  std::vector<Event> heap_;
  CallbackSlab slab_;  ///< kCallback payloads (arg = slab slot index)
  std::uint64_t seq_ = 0;
  std::uint64_t grows_ = 0;
  std::size_t peak_size_ = 0;
};

/// The previous event queue: every event a heap-allocated, type-erased
/// std::function entry in a std::push_heap/std::pop_heap vector.  Kept as
/// the in-binary A/B baseline the typed core is measured against
/// (bench/micro_engine, `Scenario::typed_events = false`); schedules are
/// bit-identical either way because both queues implement the same
/// (time, seq) ordering contract.
class LegacyEventQueue {
 public:
  void push(SimTime t, EventFn fn) {
    ISTC_EXPECTS(fn != nullptr);
    heap_.push_back(Entry{t, seq_++, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), after);
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  SimTime next_time() const {
    ISTC_EXPECTS(!heap_.empty());
    return heap_.front().time;
  }

  /// Remove and return the earliest event (FIFO among equal times).
  /// pop_heap rotates the minimum to the back, so it is moved out of a
  /// mutable element — no const_cast around priority_queue::top() needed.
  EventFn pop() {
    ISTC_EXPECTS(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), after);
    EventFn fn = std::move(heap_.back().fn);
    heap_.pop_back();
    return fn;
  }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventFn fn;
  };

  /// Comparator for std::push_heap's max-heap view: "a fires after b"
  /// yields a min-heap on the (time, seq) contract.
  static bool after(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  std::vector<Entry> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace istc::sim
