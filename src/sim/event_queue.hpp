#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"

/// \file event_queue.hpp
/// A monotone priority queue of timestamped events.  Ties are broken by
/// insertion sequence so replays are deterministic regardless of heap
/// internals.

namespace istc::sim {

/// Event payloads are type-erased callbacks.  The engine drains all events
/// at a timestamp before advancing the clock, so callbacks scheduled "now"
/// still run in this timestep.
using EventFn = std::function<void()>;

class EventQueue {
 public:
  void push(SimTime t, EventFn fn) {
    ISTC_EXPECTS(fn != nullptr);
    heap_.push(Entry{t, seq_++, std::move(fn)});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  SimTime next_time() const {
    ISTC_EXPECTS(!heap_.empty());
    return heap_.top().time;
  }

  /// Remove and return the earliest event (FIFO among equal times).
  EventFn pop() {
    ISTC_EXPECTS(!heap_.empty());
    // std::priority_queue::top() is const&; the callback must be moved out,
    // which is safe because pop() immediately discards the entry.
    EventFn fn = std::move(const_cast<Entry&>(heap_.top()).fn);
    heap_.pop();
    return fn;
  }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventFn fn;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace istc::sim
