#include "sim/engine.hpp"

#include <algorithm>

namespace istc::sim {

void Engine::on_quiescent(std::function<void(SimTime)> hook) {
  ISTC_EXPECTS(hook != nullptr);
  hooks_.push_back(std::move(hook));
}

void Engine::dispatch(Event& e) {
  switch (e.type) {
    case EventType::kCallback: {
      // Claim the payload first: the invoked callable may schedule more
      // events and recycle this event's slab slot.
      CallbackSlot cb = impl_ == QueueImpl::kCalendar
                            ? calendar_.take_callback(e)
                            : queue_.take_callback(e);
      cb.invoke();
      break;
    }
    case EventType::kJobSubmit:
      sink_->job_submit(e.arg);
      break;
    case EventType::kJobFinish:
      sink_->job_finish(e.arg);
      break;
    case EventType::kSchedulerWake:
      break;  // its entire effect is the quiescent pass that follows
    case EventType::kCapacityRepair:
      sink_->capacity_repair(e.arg);
      break;
    case EventType::kFaultFire:
      fault_hook_(e.arg);
      break;
    case EventType::kGridArrival:
      grid_hook_(e.arg);
      break;
    case EventType::kSample:
      // Never queued: the pending sample is the next_sample_ scalar and
      // fires from drain_current_time (see Engine::schedule_sample).
      break;
  }
}

void Engine::sync_counters() {
  // Gauges, not increments: the engine owns the running values in stats_
  // and mirrors the maxima into the shared counter block (so a tracer
  // attached to several engines reports the largest seen).
  trace::TraceSummary& c = tracer_->counters();
  c.engine_peak_queue_depth = std::max(
      c.engine_peak_queue_depth,
      static_cast<std::uint64_t>(stats_.peak_queue_depth));
  c.engine_max_timestep_batch =
      std::max(c.engine_max_timestep_batch, stats_.max_timestep_batch);
  c.engine_heap_allocations =
      std::max(c.engine_heap_allocations, stats_.heap_allocations);
  c.engine_events_callback = std::max(
      c.engine_events_callback, stats_.scheduled_by_type[static_cast<int>(
                                    EventType::kCallback)]);
  c.engine_events_job_submit = std::max(
      c.engine_events_job_submit, stats_.scheduled_by_type[static_cast<int>(
                                      EventType::kJobSubmit)]);
  c.engine_events_job_finish = std::max(
      c.engine_events_job_finish, stats_.scheduled_by_type[static_cast<int>(
                                      EventType::kJobFinish)]);
  c.engine_events_wake = std::max(
      c.engine_events_wake, stats_.scheduled_by_type[static_cast<int>(
                                EventType::kSchedulerWake)]);
  c.engine_events_sample = std::max(
      c.engine_events_sample, stats_.scheduled_by_type[static_cast<int>(
                                  EventType::kSample)]);
  c.engine_events_repair = std::max(
      c.engine_events_repair, stats_.scheduled_by_type[static_cast<int>(
                                  EventType::kCapacityRepair)]);
  c.engine_events_fault = std::max(
      c.engine_events_fault, stats_.scheduled_by_type[static_cast<int>(
                                 EventType::kFaultFire)]);
  c.engine_events_grid_arrival = std::max(
      c.engine_events_grid_arrival, stats_.scheduled_by_type[static_cast<int>(
                                        EventType::kGridArrival)]);
}

void Engine::drain_current_time() {
  // Alternate "drain events at now_" with "run hooks" until neither side
  // produces more work at this timestamp.  The guard bounds pathological
  // hook/event ping-pong (a correct model converges in a few rounds).
  constexpr int kMaxRounds = 64;
  int rounds = 0;
  std::uint64_t batch = 0;
  if (ISTC_TRACE_COUNTERS_ON(tracer_)) {
    ++tracer_->counters().engine_timesteps;
  }
  // Claim the pending sample up front; it fires after the timestep
  // settles, so it observes the post-pass state and its hook can re-arm.
  const bool sample_due = next_sample_ == now_;
  if (sample_due) next_sample_ = kTimeInfinity;
  for (;;) {
    bool fired = false;
    while (!heap_empty() && heap_next_time() == now_) {
      ++events_processed_;
      ++batch;
      if (ISTC_TRACE_COUNTERS_ON(tracer_)) {
        ++tracer_->counters().engine_events_drained;
      }
      switch (impl_) {
        case QueueImpl::kBinaryHeap: {
          Event e = queue_.pop();
          dispatch(e);
          break;
        }
        case QueueImpl::kCalendar: {
          Event e = calendar_.pop();
          dispatch(e);
          break;
        }
        case QueueImpl::kLegacy: {
          EventFn fn = legacy_.pop();
          fn();
          break;
        }
      }
      fired = true;
    }
    // Hook transparency: a timestamp reached only by the sample probes
    // state but changes nothing, so the quiescent hooks (the scheduler
    // pass) are skipped and the schedule is bit-identical to an unsampled
    // run.
    if (!fired && rounds == 0 && sample_due) break;
    if (!fired && rounds > 0) break;  // hooks already ran, nothing new
    for (auto& hook : hooks_) hook(now_);
    ++rounds;
    ISTC_ASSERT(rounds < kMaxRounds);
    if (heap_empty() || heap_next_time() != now_) break;
  }
  if (sample_due) {
    ++events_processed_;
    ++batch;
    if (ISTC_TRACE_COUNTERS_ON(tracer_)) {
      ++tracer_->counters().engine_events_drained;
    }
    if (sample_hook_) sample_hook_(now_);
  }
  if (batch > stats_.max_timestep_batch) stats_.max_timestep_batch = batch;
  stats_.heap_allocations = impl_ == QueueImpl::kCalendar
                                ? calendar_.heap_allocations()
                                : queue_.heap_allocations();
  if (ISTC_TRACE_COUNTERS_ON(tracer_)) sync_counters();
}

bool Engine::step() {
  if (queue_empty()) return false;
  now_ = queue_next_time();
  drain_current_time();
  return true;
}

void Engine::run(SimTime until) {
  while (!queue_empty() && queue_next_time() <= until) {
    now_ = queue_next_time();
    drain_current_time();
  }
  if (now_ < until && until != kTimeInfinity) now_ = until;
}

}  // namespace istc::sim
