#include "sim/engine.hpp"

namespace istc::sim {

void Engine::schedule(SimTime t, EventFn fn) {
  ISTC_EXPECTS(t >= now_);
  queue_.push(t, std::move(fn));
}

void Engine::schedule_in(Seconds dt, EventFn fn) {
  ISTC_EXPECTS(dt >= 0);
  schedule(now_ + dt, std::move(fn));
}

void Engine::on_quiescent(std::function<void(SimTime)> hook) {
  ISTC_EXPECTS(hook != nullptr);
  hooks_.push_back(std::move(hook));
}

void Engine::drain_current_time() {
  // Alternate "drain events at now_" with "run hooks" until neither side
  // produces more work at this timestamp.  The guard bounds pathological
  // hook/event ping-pong (a correct model converges in a few rounds).
  constexpr int kMaxRounds = 64;
  int rounds = 0;
  if (ISTC_TRACE_COUNTERS_ON(tracer_)) {
    ++tracer_->counters().engine_timesteps;
  }
  for (;;) {
    bool fired = false;
    while (!queue_.empty() && queue_.next_time() == now_) {
      EventFn fn = queue_.pop();
      ++events_processed_;
      if (ISTC_TRACE_COUNTERS_ON(tracer_)) {
        ++tracer_->counters().engine_events_drained;
      }
      fn();
      fired = true;
    }
    if (!fired && rounds > 0) break;  // hooks already ran, nothing new
    for (auto& hook : hooks_) hook(now_);
    ++rounds;
    ISTC_ASSERT(rounds < kMaxRounds);
    if (queue_.empty() || queue_.next_time() != now_) break;
  }
}

bool Engine::step() {
  if (queue_.empty()) return false;
  now_ = queue_.next_time();
  drain_current_time();
  return true;
}

void Engine::run(SimTime until) {
  while (!queue_.empty() && queue_.next_time() <= until) {
    now_ = queue_.next_time();
    drain_current_time();
  }
  if (now_ < until && until != kTimeInfinity) now_ = until;
}

}  // namespace istc::sim
