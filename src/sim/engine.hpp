#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.hpp"
#include "trace/tracer.hpp"
#include "util/time.hpp"

/// \file engine.hpp
/// The discrete-event engine.
///
/// Model: events fire in (time, insertion) order.  After *all* events at a
/// timestamp have fired, registered quiescent hooks run once.  The batch
/// scheduler performs its scheduling pass in a quiescent hook, so N jobs
/// completing at the same second trigger one pass, exactly like a real
/// resource manager waking up on a state change.

namespace istc::sim {

class Engine {
 public:
  /// Schedule a callback at absolute time t (must not be in the past).
  void schedule(SimTime t, EventFn fn);

  /// Schedule a callback dt seconds from now.
  void schedule_in(Seconds dt, EventFn fn);

  /// Register a hook invoked once per distinct timestamp after its events
  /// drain.  Hooks run in registration order and may schedule new events;
  /// events they add for the *current* time fire before the timestep ends
  /// and re-trigger the hooks (bounded by the iteration guard).
  void on_quiescent(std::function<void(SimTime)> hook);

  SimTime now() const { return now_; }
  std::uint64_t events_processed() const { return events_processed_; }
  bool finished() const { return queue_.empty(); }

  /// Attach a tracer (nullptr detaches).  The engine only feeds counters
  /// (events drained, quiescent timesteps); it never records events, so
  /// attaching a tracer cannot perturb event order.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }

  /// Run until the queue empties or the clock would pass `until`.
  /// Events at exactly `until` are processed.
  void run(SimTime until = kTimeInfinity);

  /// Process exactly one timestep (all events at the next timestamp plus
  /// quiescent hooks).  Returns false when no events remain.
  bool step();

 private:
  void drain_current_time();

  EventQueue queue_;
  std::vector<std::function<void(SimTime)>> hooks_;
  SimTime now_ = 0;
  std::uint64_t events_processed_ = 0;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace istc::sim
