#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/event_queue.hpp"
#include "trace/tracer.hpp"
#include "util/time.hpp"

/// \file engine.hpp
/// The discrete-event engine.
///
/// Model: events fire in (time, insertion) order.  After *all* events at a
/// timestamp have fired, registered quiescent hooks run once.  The batch
/// scheduler performs its scheduling pass in a quiescent hook, so N jobs
/// completing at the same second trigger one pass, exactly like a real
/// resource manager waking up on a state change.
///
/// Three event representations share the engine (A/B/C selectable at
/// construction via QueueImpl, `Scenario::queue`):
///   - calendar: the two-rung calendar/ladder queue of calendar_queue.hpp,
///     O(1) amortized push/pop for the near-uniform event-time
///     distributions these replays produce (the production default).
///   - binary heap: the flat POD heap of event_queue.hpp (PR 3) — typed
///     schedule_* calls carry a 32-bit argument dispatched to the
///     registered JobEventSink, generic callbacks use the small-buffer
///     slot, and a reserve_events()'d steady state allocates nothing.
///   - legacy: every event a type-erased std::function (the pre-rewrite
///     behavior, kept as the in-binary benchmark baseline).
/// All honor the same (time, seq) contract, so schedules are
/// bit-identical across modes (pinned by tests/trace/test_determinism).

namespace istc::sim {

/// Receiver of typed job events.  The batch scheduler implements this;
/// dispatch is one virtual call instead of a type-erased closure, and the
/// event entry carries a 32-bit id instead of captured state.
class JobEventSink {
 public:
  /// A job submission arrives; `index` is the value passed to
  /// schedule_job_submit (the scheduler's submission-table index).
  virtual void job_submit(std::uint32_t index) = 0;
  /// A running job's true runtime elapsed; `slot` is the value passed to
  /// schedule_job_finish (the scheduler's job-store slot).
  virtual void job_finish(std::uint32_t slot) = 0;
  /// A capacity outage scheduled via schedule_capacity_repair elapsed;
  /// `outage_id` is the scheduler's outage identifier.  Default no-op so
  /// sinks without a fault surface (tests, benches) need not care.
  virtual void capacity_repair(std::uint32_t outage_id) { (void)outage_id; }

 protected:
  ~JobEventSink() = default;
};

/// Engine-side event statistics, tracked unconditionally (all are cheap
/// increments / compares) and mirrored into TraceSummary when a tracer
/// with counters is attached.
struct EngineStats {
  /// Events scheduled, by EventType slot (callback, submit, finish, wake,
  /// sample).
  std::uint64_t scheduled_by_type[kNumEventTypes] = {};
  /// High-water mark of simultaneously queued events.
  std::size_t peak_queue_depth = 0;
  /// Largest number of events drained at one timestamp (including events
  /// scheduled for "now" from inside callbacks and hooks).
  std::uint64_t max_timestep_batch = 0;
  /// Typed-queue heap allocations: backing-vector growth plus boxed
  /// callbacks.  In legacy mode this stays 0 — the legacy queue's
  /// std::function allocations are not observable from here, which is
  /// half the reason the typed core exists.
  std::uint64_t heap_allocations = 0;
};

class Engine {
 public:
  /// \param impl which event-queue representation to run on.
  explicit Engine(QueueImpl impl) : impl_(impl) {}

  /// Compatibility constructor: the pre-calendar A/B knob.  true selects
  /// the typed binary heap (the PR 3 default, which existing allocation
  /// tests pin), false the legacy std::function queue.
  explicit Engine(bool typed_events = true)
      : Engine(typed_events ? QueueImpl::kBinaryHeap : QueueImpl::kLegacy) {}

  QueueImpl queue_impl() const { return impl_; }
  bool typed_events() const { return impl_ != QueueImpl::kLegacy; }

  /// Register the receiver of typed job events (nullptr detaches).  Must
  /// be set before schedule_job_submit / schedule_job_finish fire.
  void set_job_sink(JobEventSink* sink) { sink_ = sink; }

  /// Pre-reserve queue slots for `n` additional events, so a known burst
  /// (e.g. a whole job log's submissions) never grows the heap mid-run.
  void reserve_events(std::size_t n) {
    switch (impl_) {
      case QueueImpl::kBinaryHeap:
        queue_.reserve(queue_.size() + n);
        break;
      case QueueImpl::kCalendar:
        calendar_.reserve(calendar_.size() + n);
        break;
      case QueueImpl::kLegacy:
        break;
    }
  }

  /// Schedule a callback at absolute time t (must not be in the past).
  /// Trivially copyable callables up to CallbackSlot::kInlineBytes are
  /// stored inline; larger or non-trivial ones are boxed (counted in
  /// EngineStats::heap_allocations).
  template <class F>
  void schedule(SimTime t, F&& fn) {
    ISTC_EXPECTS(t >= now_);
    switch (impl_) {
      case QueueImpl::kBinaryHeap:
        queue_.push_callback(t, std::forward<F>(fn));
        break;
      case QueueImpl::kCalendar:
        calendar_.push_callback(t, std::forward<F>(fn));
        break;
      case QueueImpl::kLegacy:
        legacy_.push(t, EventFn(std::forward<F>(fn)));
        break;
    }
    note_scheduled(EventType::kCallback);
  }

  /// Schedule a callback dt seconds from now.
  template <class F>
  void schedule_in(Seconds dt, F&& fn) {
    ISTC_EXPECTS(dt >= 0);
    schedule(now_ + dt, std::forward<F>(fn));
  }

  /// Typed paths: no captured state, a 32-bit argument dispatched to the
  /// JobEventSink (submit/finish) or to nobody (wake — its only purpose is
  /// triggering a quiescent pass at t).
  void schedule_job_submit(SimTime t, std::uint32_t index) {
    schedule_typed(t, EventType::kJobSubmit, index);
  }
  void schedule_job_finish(SimTime t, std::uint32_t slot) {
    schedule_typed(t, EventType::kJobFinish, slot);
  }
  void schedule_wake(SimTime t) {
    schedule_typed(t, EventType::kSchedulerWake, 0);
  }
  void schedule_capacity_repair(SimTime t, std::uint32_t outage_id) {
    schedule_typed(t, EventType::kCapacityRepair, outage_id);
  }
  /// Fault-timeline firing (fault::FaultInjector): arg indexes the
  /// injector's pre-generated timeline and dispatches to the fault hook.
  /// Typed rather than a captured callback so a mid-run queue holds only
  /// POD entries — the property run forks depend on.
  void schedule_fault(SimTime t, std::uint32_t timeline_index) {
    schedule_typed(t, EventType::kFaultFire, timeline_index);
  }

  /// Receiver of kFaultFire events (at most one; empty detaches).
  void set_fault_hook(std::function<void(std::uint32_t)> hook) {
    fault_hook_ = std::move(hook);
  }

  /// Grid-port delivery (grid::GridMachine): arg indexes the machine's
  /// append-only delivery log and dispatches to the grid hook.  Typed for
  /// the same reason as schedule_fault — a mid-run queue must hold only
  /// POD entries so a whole fleet shard can fork via adopt_state.
  void schedule_grid_arrival(SimTime t, std::uint32_t delivery_index) {
    schedule_typed(t, EventType::kGridArrival, delivery_index);
  }

  /// Receiver of kGridArrival events (at most one; empty detaches).
  void set_grid_hook(std::function<void(std::uint32_t)> hook) {
    grid_hook_ = std::move(hook);
  }

  /// Schedule a metrics sample at t (metrics::SimSampler).  Unlike a wake,
  /// a sample is *hook-transparent*: a timestamp reached only by the
  /// sample invokes the sample hook but skips the quiescent hooks, so
  /// periodic sampling never inserts extra scheduler passes (which would
  /// shift gate decisions) and the schedule stays bit-identical to an
  /// unsampled run in both queue modes.  The pending sample is a scalar
  /// deadline beside the event heap, not a heap entry — re-arming every
  /// tick costs two comparisons, never a sift through the (large,
  /// submission-preloaded) heap.  At most one may be pending; the sampler
  /// re-arms from its own hook, after the slot has been claimed.  When a
  /// sample coincides with real events it fires last, observing the
  /// settled post-pass state.
  void schedule_sample(SimTime t) {
    ISTC_EXPECTS(t >= now_);
    ISTC_EXPECTS(next_sample_ == kTimeInfinity);
    next_sample_ = t;
    note_scheduled(EventType::kSample);
  }

  /// Receiver of kSample events (at most one; nullptr detaches).  The hook
  /// must only observe — scheduling anything other than a future sample
  /// from it would forfeit hook transparency.
  void set_sample_hook(std::function<void(SimTime)> hook) {
    sample_hook_ = std::move(hook);
  }

  /// Register a hook invoked once per distinct timestamp after its events
  /// drain.  Hooks run in registration order and may schedule new events;
  /// events they add for the *current* time fire before the timestep ends
  /// and re-trigger the hooks (bounded by the iteration guard).
  void on_quiescent(std::function<void(SimTime)> hook);

  SimTime now() const { return now_; }
  std::uint64_t events_processed() const { return events_processed_; }
  bool finished() const { return queue_empty(); }
  /// Absolute time of the next pending work item (heap events merged with
  /// the pending sample); kTimeInfinity when nothing is queued.  The grid
  /// layer uses this to advance a machine in bounded epoch slices via
  /// step() without ever moving the clock past a real event — run(until)
  /// bumps now_ to `until`, which would shift sim_end across slicings.
  SimTime next_event_time() const { return queue_next_time(); }
  std::size_t queued_events() const { return queue_size(); }

  /// Event-core statistics (see EngineStats); valid in both modes.
  const EngineStats& stats() const { return stats_; }

  /// Attach a tracer (nullptr detaches).  The engine only feeds counters
  /// (events drained, quiescent timesteps, event-core gauges); it never
  /// records events, so attaching a tracer cannot perturb event order.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }

  /// Run until the queue empties or the clock would pass `until`.
  /// Events at exactly `until` are processed.
  void run(SimTime until = kTimeInfinity);

  /// Process exactly one timestep (all events at the next timestamp plus
  /// quiescent hooks).  Returns false when no events remain.
  bool step();

  /// Run-fork support: become a mid-run copy of `other` — pending events,
  /// push counter, clock, and statistics.  Requires both engines on the
  /// same typed queue implementation (legacy closures capture their owner
  /// and cannot be transplanted), no live callback payloads in either
  /// queue, and no pending sample on `other`.  Sinks and hooks are NOT
  /// copied: they are identities of the forked stack, which re-registers
  /// its own (see core/fork.hpp).
  void adopt_state(const Engine& other) {
    ISTC_EXPECTS(impl_ == other.impl_);
    ISTC_EXPECTS(impl_ != QueueImpl::kLegacy);
    ISTC_EXPECTS(other.next_sample_ == kTimeInfinity);
    if (impl_ == QueueImpl::kBinaryHeap) {
      queue_.assign_from(other.queue_);
    } else {
      calendar_.assign_from(other.calendar_);
    }
    now_ = other.now_;
    events_processed_ = other.events_processed_;
    stats_ = other.stats_;
  }

 private:
  void schedule_typed(SimTime t, EventType type, std::uint32_t arg) {
    ISTC_EXPECTS(t >= now_);
    switch (impl_) {
      case QueueImpl::kBinaryHeap:
        queue_.push_typed(t, type, arg);
        break;
      case QueueImpl::kCalendar:
        calendar_.push_typed(t, type, arg);
        break;
      case QueueImpl::kLegacy:
        // Legacy baseline: the typed call sites still work, each event
        // just pays the std::function representation the rewrite removed.
        switch (type) {
          case EventType::kJobSubmit:
            legacy_.push(t, [this, arg] { sink_->job_submit(arg); });
            break;
          case EventType::kJobFinish:
            legacy_.push(t, [this, arg] { sink_->job_finish(arg); });
            break;
          case EventType::kCapacityRepair:
            legacy_.push(t, [this, arg] { sink_->capacity_repair(arg); });
            break;
          case EventType::kFaultFire:
            legacy_.push(t, [this, arg] { fault_hook_(arg); });
            break;
          case EventType::kGridArrival:
            legacy_.push(t, [this, arg] { grid_hook_(arg); });
            break;
          default:
            legacy_.push(t, [] {});
            break;
        }
        break;
    }
    note_scheduled(type);
  }

  void note_scheduled(EventType type) {
    ++stats_.scheduled_by_type[static_cast<int>(type)];
    const std::size_t depth = queue_size();
    if (depth > stats_.peak_queue_depth) stats_.peak_queue_depth = depth;
  }

  /// Heap-only accessors (real events; the pending sample is separate).
  std::size_t queue_size() const {
    switch (impl_) {
      case QueueImpl::kBinaryHeap:
        return queue_.size();
      case QueueImpl::kCalendar:
        return calendar_.size();
      case QueueImpl::kLegacy:
        break;
    }
    return legacy_.size();
  }
  bool heap_empty() const {
    switch (impl_) {
      case QueueImpl::kBinaryHeap:
        return queue_.empty();
      case QueueImpl::kCalendar:
        return calendar_.empty();
      case QueueImpl::kLegacy:
        break;
    }
    return legacy_.empty();
  }
  SimTime heap_next_time() const {
    switch (impl_) {
      case QueueImpl::kBinaryHeap:
        return queue_.next_time();
      case QueueImpl::kCalendar:
        return calendar_.next_time();
      case QueueImpl::kLegacy:
        break;
    }
    return legacy_.next_time();
  }

  /// Overall next work item: real events merged with the pending sample.
  bool queue_empty() const {
    return heap_empty() && next_sample_ == kTimeInfinity;
  }
  SimTime queue_next_time() const {
    const SimTime t = heap_empty() ? kTimeInfinity : heap_next_time();
    return t < next_sample_ ? t : next_sample_;
  }

  void dispatch(Event& e);
  void drain_current_time();
  /// Mirror the event-core gauges into the attached tracer's counters.
  void sync_counters();

  const QueueImpl impl_;
  EventQueue queue_;
  CalendarEventQueue calendar_;
  LegacyEventQueue legacy_;
  JobEventSink* sink_ = nullptr;
  std::function<void(std::uint32_t)> fault_hook_;
  std::function<void(std::uint32_t)> grid_hook_;
  std::function<void(SimTime)> sample_hook_;
  /// The single pending sample deadline (kTimeInfinity = none); lives
  /// beside the heap so per-tick re-arming is O(1) — see schedule_sample.
  SimTime next_sample_ = kTimeInfinity;
  std::vector<std::function<void(SimTime)>> hooks_;
  SimTime now_ = 0;
  std::uint64_t events_processed_ = 0;
  EngineStats stats_;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace istc::sim
