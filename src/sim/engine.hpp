#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.hpp"
#include "trace/tracer.hpp"
#include "util/time.hpp"

/// \file engine.hpp
/// The discrete-event engine.
///
/// Model: events fire in (time, insertion) order.  After *all* events at a
/// timestamp have fired, registered quiescent hooks run once.  The batch
/// scheduler performs its scheduling pass in a quiescent hook, so N jobs
/// completing at the same second trigger one pass, exactly like a real
/// resource manager waking up on a state change.
///
/// Two event representations share the engine (A/B selectable at
/// construction, `Scenario::typed_events`):
///   - typed (default): the flat POD heap of event_queue.hpp — typed
///     schedule_* calls carry a 32-bit argument dispatched to the
///     registered JobEventSink, generic callbacks use the small-buffer
///     slot, and a reserve_events()'d steady state allocates nothing.
///   - legacy: every event a type-erased std::function (the pre-rewrite
///     behavior, kept as the in-binary benchmark baseline).
/// Both honor the same (time, seq) contract, so schedules are
/// bit-identical across modes (pinned by tests/trace/test_determinism).

namespace istc::sim {

/// Receiver of typed job events.  The batch scheduler implements this;
/// dispatch is one virtual call instead of a type-erased closure, and the
/// event entry carries a 32-bit id instead of captured state.
class JobEventSink {
 public:
  /// A job submission arrives; `index` is the value passed to
  /// schedule_job_submit (the scheduler's submission-table index).
  virtual void job_submit(std::uint32_t index) = 0;
  /// A running job's true runtime elapsed; `job_id` identifies it.
  virtual void job_finish(std::uint32_t job_id) = 0;

 protected:
  ~JobEventSink() = default;
};

/// Engine-side event statistics, tracked unconditionally (all are cheap
/// increments / compares) and mirrored into TraceSummary when a tracer
/// with counters is attached.
struct EngineStats {
  /// Events scheduled, by EventType slot (callback, submit, finish, wake,
  /// sample).
  std::uint64_t scheduled_by_type[kNumEventTypes] = {};
  /// High-water mark of simultaneously queued events.
  std::size_t peak_queue_depth = 0;
  /// Largest number of events drained at one timestamp (including events
  /// scheduled for "now" from inside callbacks and hooks).
  std::uint64_t max_timestep_batch = 0;
  /// Typed-queue heap allocations: backing-vector growth plus boxed
  /// callbacks.  In legacy mode this stays 0 — the legacy queue's
  /// std::function allocations are not observable from here, which is
  /// half the reason the typed core exists.
  std::uint64_t heap_allocations = 0;
};

class Engine {
 public:
  /// \param typed_events select the typed POD event core (default) or the
  ///        legacy std::function queue (the A/B baseline).
  explicit Engine(bool typed_events = true) : typed_(typed_events) {}

  bool typed_events() const { return typed_; }

  /// Register the receiver of typed job events (nullptr detaches).  Must
  /// be set before schedule_job_submit / schedule_job_finish fire.
  void set_job_sink(JobEventSink* sink) { sink_ = sink; }

  /// Pre-reserve queue slots for `n` additional events, so a known burst
  /// (e.g. a whole job log's submissions) never grows the heap mid-run.
  void reserve_events(std::size_t n) {
    if (typed_) queue_.reserve(queue_.size() + n);
  }

  /// Schedule a callback at absolute time t (must not be in the past).
  /// Trivially copyable callables up to CallbackSlot::kInlineBytes are
  /// stored inline; larger or non-trivial ones are boxed (counted in
  /// EngineStats::heap_allocations).
  template <class F>
  void schedule(SimTime t, F&& fn) {
    ISTC_EXPECTS(t >= now_);
    if (typed_) {
      queue_.push_callback(t, std::forward<F>(fn));
    } else {
      legacy_.push(t, EventFn(std::forward<F>(fn)));
    }
    note_scheduled(EventType::kCallback);
  }

  /// Schedule a callback dt seconds from now.
  template <class F>
  void schedule_in(Seconds dt, F&& fn) {
    ISTC_EXPECTS(dt >= 0);
    schedule(now_ + dt, std::forward<F>(fn));
  }

  /// Typed paths: no captured state, a 32-bit argument dispatched to the
  /// JobEventSink (submit/finish) or to nobody (wake — its only purpose is
  /// triggering a quiescent pass at t).
  void schedule_job_submit(SimTime t, std::uint32_t index) {
    schedule_typed(t, EventType::kJobSubmit, index);
  }
  void schedule_job_finish(SimTime t, std::uint32_t job_id) {
    schedule_typed(t, EventType::kJobFinish, job_id);
  }
  void schedule_wake(SimTime t) {
    schedule_typed(t, EventType::kSchedulerWake, 0);
  }

  /// Schedule a metrics sample at t (metrics::SimSampler).  Unlike a wake,
  /// a sample is *hook-transparent*: a timestamp reached only by the
  /// sample invokes the sample hook but skips the quiescent hooks, so
  /// periodic sampling never inserts extra scheduler passes (which would
  /// shift gate decisions) and the schedule stays bit-identical to an
  /// unsampled run in both queue modes.  The pending sample is a scalar
  /// deadline beside the event heap, not a heap entry — re-arming every
  /// tick costs two comparisons, never a sift through the (large,
  /// submission-preloaded) heap.  At most one may be pending; the sampler
  /// re-arms from its own hook, after the slot has been claimed.  When a
  /// sample coincides with real events it fires last, observing the
  /// settled post-pass state.
  void schedule_sample(SimTime t) {
    ISTC_EXPECTS(t >= now_);
    ISTC_EXPECTS(next_sample_ == kTimeInfinity);
    next_sample_ = t;
    note_scheduled(EventType::kSample);
  }

  /// Receiver of kSample events (at most one; nullptr detaches).  The hook
  /// must only observe — scheduling anything other than a future sample
  /// from it would forfeit hook transparency.
  void set_sample_hook(std::function<void(SimTime)> hook) {
    sample_hook_ = std::move(hook);
  }

  /// Register a hook invoked once per distinct timestamp after its events
  /// drain.  Hooks run in registration order and may schedule new events;
  /// events they add for the *current* time fire before the timestep ends
  /// and re-trigger the hooks (bounded by the iteration guard).
  void on_quiescent(std::function<void(SimTime)> hook);

  SimTime now() const { return now_; }
  std::uint64_t events_processed() const { return events_processed_; }
  bool finished() const { return queue_empty(); }
  /// Absolute time of the next pending work item (heap events merged with
  /// the pending sample); kTimeInfinity when nothing is queued.  The grid
  /// layer uses this to advance a machine in bounded epoch slices via
  /// step() without ever moving the clock past a real event — run(until)
  /// bumps now_ to `until`, which would shift sim_end across slicings.
  SimTime next_event_time() const { return queue_next_time(); }
  std::size_t queued_events() const {
    return typed_ ? queue_.size() : legacy_.size();
  }

  /// Event-core statistics (see EngineStats); valid in both modes.
  const EngineStats& stats() const { return stats_; }

  /// Attach a tracer (nullptr detaches).  The engine only feeds counters
  /// (events drained, quiescent timesteps, event-core gauges); it never
  /// records events, so attaching a tracer cannot perturb event order.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }

  /// Run until the queue empties or the clock would pass `until`.
  /// Events at exactly `until` are processed.
  void run(SimTime until = kTimeInfinity);

  /// Process exactly one timestep (all events at the next timestamp plus
  /// quiescent hooks).  Returns false when no events remain.
  bool step();

 private:
  void schedule_typed(SimTime t, EventType type, std::uint32_t arg) {
    ISTC_EXPECTS(t >= now_);
    if (typed_) {
      queue_.push_typed(t, type, arg);
    } else {
      // Legacy baseline: the typed call sites still work, each event just
      // pays the std::function representation the rewrite removed.
      switch (type) {
        case EventType::kJobSubmit:
          legacy_.push(t, [this, arg] { sink_->job_submit(arg); });
          break;
        case EventType::kJobFinish:
          legacy_.push(t, [this, arg] { sink_->job_finish(arg); });
          break;
        default:
          legacy_.push(t, [] {});
          break;
      }
    }
    note_scheduled(type);
  }

  void note_scheduled(EventType type) {
    ++stats_.scheduled_by_type[static_cast<int>(type)];
    const std::size_t depth = typed_ ? queue_.size() : legacy_.size();
    if (depth > stats_.peak_queue_depth) stats_.peak_queue_depth = depth;
  }

  /// Heap-only accessors (real events; the pending sample is separate).
  bool heap_empty() const { return typed_ ? queue_.empty() : legacy_.empty(); }
  SimTime heap_next_time() const {
    return typed_ ? queue_.next_time() : legacy_.next_time();
  }

  /// Overall next work item: real events merged with the pending sample.
  bool queue_empty() const {
    return heap_empty() && next_sample_ == kTimeInfinity;
  }
  SimTime queue_next_time() const {
    const SimTime t = heap_empty() ? kTimeInfinity : heap_next_time();
    return t < next_sample_ ? t : next_sample_;
  }

  void dispatch(Event& e);
  void drain_current_time();
  /// Mirror the event-core gauges into the attached tracer's counters.
  void sync_counters();

  const bool typed_;
  EventQueue queue_;
  LegacyEventQueue legacy_;
  JobEventSink* sink_ = nullptr;
  std::function<void(SimTime)> sample_hook_;
  /// The single pending sample deadline (kTimeInfinity = none); lives
  /// beside the heap so per-tick re-arming is O(1) — see schedule_sample.
  SimTime next_sample_ = kTimeInfinity;
  std::vector<std::function<void(SimTime)>> hooks_;
  SimTime now_ = 0;
  std::uint64_t events_processed_ = 0;
  EngineStats stats_;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace istc::sim
