#include "sched/presets.hpp"

#include "util/assert.hpp"

namespace istc::sched {

using cluster::Site;

PolicySpec site_policy(Site site) {
  PolicySpec p;
  switch (site) {
    case Site::kRoss:
      p.name = "PBS (conservative backfill, equal shares)";
      p.backfill = BackfillMode::kConservative;
      p.fairshare.mode = FairShareMode::kEqualUsers;
      p.fairshare.half_life = 7 * kSecondsPerDay;
      p.time_of_day.reset();
      return p;
    case Site::kBlueMountain:
      p.name = "LSF (EASY backfill, hierarchical group fair share)";
      p.backfill = BackfillMode::kEasy;
      p.fairshare.mode = FairShareMode::kGroupHierarchy;
      p.fairshare.half_life = 7 * kSecondsPerDay;
      p.time_of_day.reset();
      return p;
    case Site::kBluePacific:
      p.name = "DPCS (EASY backfill, user+group fair share, time-of-day)";
      p.backfill = BackfillMode::kEasy;
      p.fairshare.mode = FairShareMode::kUserAndGroup;
      p.fairshare.group_weight = 0.5;
      p.fairshare.half_life = 7 * kSecondsPerDay;
      // Wide jobs may only start at night or on weekends.
      p.time_of_day = TimeOfDayRule{.min_cpus_gated = 128,
                                    .min_estimate_gated = hours(12),
                                    .night_start_hour = 18,
                                    .night_end_hour = 8,
                                    .weekends_open = true};
      return p;
  }
  ISTC_ASSERT(false);
  return p;
}

}  // namespace istc::sched
