#include "sched/timeofday.hpp"

#include "util/assert.hpp"

namespace istc::sched {

bool TimeOfDayRule::window_open(SimTime t) const {
  if (weekends_open && (day_index(t) % 7) >= 5) return true;
  const int h = hour_of_day(t);
  if (night_start_hour <= night_end_hour) {
    return h >= night_start_hour && h < night_end_hour;
  }
  // Wrapping window, e.g. [18, 8): open late evening and early morning.
  return h >= night_start_hour || h < night_end_hour;
}

SimTime TimeOfDayRule::earliest_allowed(const workload::Job& job,
                                        SimTime t) const {
  if (allowed(job, t)) return t;
  // Step to the next window boundary; at most a week of hourly steps.
  SimTime probe = (t / kSecondsPerHour + 1) * kSecondsPerHour;
  for (int i = 0; i < 24 * 8; ++i) {
    if (window_open(probe)) return probe;
    probe += kSecondsPerHour;
  }
  ISTC_ASSERT(false);  // a night window always exists within a week
  return probe;
}

}  // namespace istc::sched
