#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/time.hpp"

/// \file pipeline.hpp
/// The scheduling pass as a pipeline of composable stages.
///
/// One pass = PriorityStage → DispatchStage → BackfillStage → GateStage,
/// each an object with its own run/time counters.  Site policies (PBS /
/// LSF / DPCS) and the ablation baselines differ only in how the stages
/// are configured — backfill discipline, preemption — not in branches
/// inside one monolithic function, which is what lets new disciplines be
/// added as stage configurations.
///
/// Stages communicate through a PassState that the scheduler threads
/// through the pipeline; the scheduler's persistent ResourceProfile and
/// queue live on the scheduler itself and stages mutate them in place.

namespace istc::sched {

class BatchScheduler;
enum class BackfillMode : std::uint8_t;

/// Fixed stage order; values index TraceSummary::stage_us / stage_runs.
enum class StageKind : std::uint8_t {
  kPriority = 0,  ///< (re)establish the queue's priority order
  kDispatch = 1,  ///< start jobs in order until the first blocked one
  kBackfill = 2,  ///< let junior jobs overtake per the backfill discipline
  kGate = 3,      ///< compact queue, arm wake, run the post-pass hook
};

inline constexpr int kNumPassStages = 4;

const char* stage_name(StageKind kind);

/// Mutable state one scheduling pass threads through the stages.  Owned by
/// the scheduler and reset per pass; vectors keep their capacity so a pass
/// allocates nothing in steady state.
struct PassState {
  SimTime now = 0;
  /// Indices into the scheduler's pending queue, in priority order
  /// (PriorityStage output; identity permutation when the cached order
  /// from the previous pass is still valid).
  std::vector<std::size_t> order;
  /// started[i] marks pending_[i] as started this pass (GateStage drops it).
  std::vector<char> started;
  /// True once a job could not start now; set by DispatchStage.
  bool saw_blocked = false;
  /// Position in `order` where DispatchStage stopped; BackfillStage
  /// resumes there.
  std::size_t resume_pos = 0;
  /// Earliest (estimate-based) start of the blocked head / of any waiter.
  SimTime head_earliest = kTimeInfinity;
  SimTime queue_earliest = kTimeInfinity;

  void reset(SimTime t, std::size_t queue_len) {
    now = t;
    order.resize(queue_len);
    started.assign(queue_len, 0);
    saw_blocked = false;
    resume_pos = 0;
    head_earliest = kTimeInfinity;
    queue_earliest = kTimeInfinity;
  }
};

/// Cheap per-stage counters (wall time is recorded only when a counting
/// tracer is attached, mirroring trace::ScopedPassTimer's contract that
/// untraced runs never read the clock).
struct StageStats {
  std::uint64_t runs = 0;
  std::uint64_t us_total = 0;
  std::uint64_t us_max = 0;
};

/// One stage of the scheduling pass.
class PassStage {
 public:
  explicit PassStage(StageKind kind) : kind_(kind) {}
  virtual ~PassStage() = default;

  PassStage(const PassStage&) = delete;
  PassStage& operator=(const PassStage&) = delete;

  StageKind kind() const { return kind_; }
  const char* name() const { return stage_name(kind_); }
  const StageStats& stats() const { return stats_; }

  virtual void run(BatchScheduler& sched, PassState& st) = 0;

 private:
  friend class BatchScheduler;
  StageKind kind_;
  StageStats stats_;
};

/// Recompute fair-share priorities and sort the queue — or prove nothing
/// changed (same fair-share ledger epoch, no new submissions) and reuse
/// the order left by the previous pass.  Reuse is exact, not approximate:
/// between charges every principal's deficit is constant and queue aging
/// shifts all priorities by the same amount, so the relative order cannot
/// change (see FairShareTracker::epoch).
class PriorityStage final : public PassStage {
 public:
  PriorityStage() : PassStage(StageKind::kPriority) {}
  void run(BatchScheduler& sched, PassState& st) override;
};

/// Start jobs in priority order until the first one that cannot start now;
/// that head job receives the pass's reservation (its shadow time).  With
/// preemption enabled, a blocked native may evict interstitial jobs first.
class DispatchStage final : public PassStage {
 public:
  DispatchStage(BackfillMode mode, bool preempt)
      : PassStage(StageKind::kDispatch), mode_(mode), preempt_(preempt) {}
  void run(BatchScheduler& sched, PassState& st) override;

 private:
  BackfillMode mode_;
  bool preempt_;
};

/// Walk the jobs behind the blocked head under the configured discipline:
/// EASY lets them start wherever the head's reservation leaves room,
/// conservative adds a reservation per blocked job, none (the ablation
/// baseline) starts nothing but still computes earliest starts for the
/// interstitial gate.
class BackfillStage final : public PassStage {
 public:
  BackfillStage(BackfillMode mode, bool preempt)
      : PassStage(StageKind::kBackfill), mode_(mode), preempt_(preempt) {}
  void run(BatchScheduler& sched, PassState& st) override;

 private:
  BackfillMode mode_;
  bool preempt_;
};

/// Post-pass gate: undo the pass's temporary reservations (the persistent
/// profile must describe running jobs only between passes), drop started
/// jobs from the queue keeping it in priority order, guarantee a future
/// pass at the head's earliest start, and hand the PassContext to the
/// post-pass hook (the interstitial driver).
class GateStage final : public PassStage {
 public:
  GateStage() : PassStage(StageKind::kGate) {}
  void run(BatchScheduler& sched, PassState& st) override;
};

/// The stage pipeline a PolicySpec configures.
std::vector<std::unique_ptr<PassStage>> build_pipeline(
    BackfillMode mode, bool preempt_interstitial);

}  // namespace istc::sched
