#include "sched/pipeline.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "sched/scheduler.hpp"
#include "util/assert.hpp"

namespace istc::sched {

const char* stage_name(StageKind kind) {
  switch (kind) {
    case StageKind::kPriority:
      return "priority";
    case StageKind::kDispatch:
      return "dispatch";
    case StageKind::kBackfill:
      return "backfill";
    case StageKind::kGate:
      return "gate";
  }
  ISTC_ASSERT(false);
  return "?";
}

void PriorityStage::run(BatchScheduler& s, PassState& st) {
  const std::size_t n = s.pending_.size();
  std::iota(st.order.begin(), st.order.end(), std::size_t{0});
  if (n == 0) return;

  // The cached order (pending_ left in priority order by the previous
  // pass's GateStage) is exact while the fair-share ledger is unchanged and
  // nothing new entered the queue: between charges every principal's
  // normalized usage is constant (all accounts decay at the same rate) and
  // queue aging shifts each pairwise priority gap by a constant, so the
  // relative order cannot move.
  const bool reuse = s.order_cached_ && !s.pending_dirty_ &&
                     s.prio_epoch_ == s.fairshare_.epoch();
  if (reuse) {
    ++s.stats_.priority_reuses;
    if (ISTC_TRACE_COUNTERS_ON(s.tracer_)) {
      ++s.tracer_->counters().priority_reuses;
    }
  } else {
    ++s.stats_.priority_recomputes;
    if (ISTC_TRACE_COUNTERS_ON(s.tracer_)) {
      ++s.tracer_->counters().priority_recomputes;
    }
    s.prio_.resize(n);
    // One deficit evaluation per (user, group) principal instead of one per
    // job; priority() is pure, so the memo is bit-identical to recomputing.
    std::unordered_map<std::uint32_t, double> deficits;
    deficits.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const workload::Job& job = s.store_.job(s.pending_[i]);
      const std::uint32_t key =
          (static_cast<std::uint32_t>(job.user) << 16) |
          static_cast<std::uint32_t>(job.group);
      auto [it, fresh] = deficits.try_emplace(key, 0.0);
      if (fresh) it->second = s.fairshare_.deficit(job.user, job.group, st.now);
      s.prio_[i] = s.fairshare_.priority_with_deficit(it->second, job, st.now);
    }
    std::stable_sort(st.order.begin(), st.order.end(),
                     [&](std::size_t a, std::size_t b) {
                       if (s.prio_[a] != s.prio_[b]) {
                         return s.prio_[a] > s.prio_[b];
                       }
                       const workload::Job& ja = s.store_.job(s.pending_[a]);
                       const workload::Job& jb = s.store_.job(s.pending_[b]);
                       if (ja.submit != jb.submit) {
                         return ja.submit < jb.submit;
                       }
                       return ja.id < jb.id;
                     });
    s.prio_epoch_ = s.fairshare_.epoch();
    s.pending_dirty_ = false;
  }

  // Dynamic re-prioritization is observable every pass regardless of
  // whether the order was reused — the event marks "priorities are current
  // as of now", and exports depend on that cadence.
  if (ISTC_TRACE_EVENTS_ON(s.tracer_)) {
    trace::TraceEvent e;
    e.time = st.now;
    e.kind = trace::EventKind::kFairShareRecompute;
    e.value = static_cast<std::int64_t>(n);
    s.tracer_->record(e);
  }
}

void DispatchStage::run(BatchScheduler& s, PassState& st) {
  std::size_t pos = 0;
  for (; pos < st.order.size(); ++pos) {
    const std::size_t idx = st.order[pos];
    const std::uint32_t slot = s.pending_[idx];
    SimTime t = kTimeInfinity;
    if (s.try_dispatch(slot, st.now, /*may_start=*/true, preempt_, t)) {
      st.started[idx] = 1;
      continue;
    }
    // The highest-priority job that cannot start now: it always holds the
    // pass's reservation (its shadow time), whatever the backfill mode.
    st.saw_blocked = true;
    st.head_earliest = t;
    st.queue_earliest = std::min(st.queue_earliest, t);
    s.make_reservation(s.store_.job(slot), t);
    ++pos;
    break;
  }
  st.resume_pos = pos;
}

void BackfillStage::run(BatchScheduler& s, PassState& st) {
  if (!st.saw_blocked) return;  // dispatch drained the queue
  // kNone (ablation baseline): strict priority order — nothing junior may
  // start, but earliest times still feed the interstitial gate.
  const bool may_start = mode_ != BackfillMode::kNone;
  for (std::size_t pos = st.resume_pos; pos < st.order.size(); ++pos) {
    const std::size_t idx = st.order[pos];
    const std::uint32_t slot = s.pending_[idx];
    SimTime t = kTimeInfinity;
    if (s.try_dispatch(slot, st.now, may_start, preempt_, t)) {
      // Started while a higher-priority job stayed blocked: backfill.
      ++s.stats_.backfilled_starts;
      st.started[idx] = 1;
      continue;
    }
    st.queue_earliest = std::min(st.queue_earliest, t);
    // EASY: only the head reserves, so later jobs may start now as long as
    // they cannot delay it.  Conservative: every blocked job reserves, so
    // nothing may delay any higher-priority waiter (Ross's more
    // restrictive backfill).
    if (mode_ == BackfillMode::kConservative) {
      s.make_reservation(s.store_.job(slot), t);
    }
  }
}

void GateStage::run(BatchScheduler& s, PassState& st) {
  // Undo this pass's reservations: between passes the persistent profile
  // must describe running jobs only.  The undo is exact — integer adds on
  // the same intervals — and the coalesce keeps segmentation canonical so
  // the breakpoint count stays bounded by live change points.
  for (const auto& tr : s.temp_reservations_) {
    s.profile_.release(tr.start, tr.end, tr.cpus);
  }
  s.temp_reservations_.clear();
  s.profile_.coalesce();

  // Drop started jobs, leaving pending_ in priority order.  The priority
  // comparator is a strict total order (ids are unique), so the sorted
  // sequence is unique regardless of storage order — and storing it sorted
  // is what makes next pass's cached order the identity permutation.
  if (!s.pending_.empty()) {
    s.compact_buf_.clear();
    s.compact_buf_.reserve(s.pending_.size());
    for (const std::size_t idx : st.order) {
      if (!st.started[idx]) s.compact_buf_.push_back(s.pending_[idx]);
    }
    s.pending_.swap(s.compact_buf_);
  }
  s.order_cached_ = true;

  // If the head job cannot start now, guarantee a future pass at its
  // earliest possible start even if no completion event lands earlier.
  if (!s.pending_.empty() && st.head_earliest < kTimeInfinity) {
    s.wake_at(st.head_earliest);
  }

  s.in_pass_ = false;

  // Snapshot the pass outcome unconditionally: the metrics probe reads the
  // cached context (head backfill wall time) even when no post-pass hook
  // is installed.
  PassContext ctx;
  ctx.now = st.now;
  ctx.free_cpus = s.machine_.free_cpus();
  ctx.queue_empty = s.pending_.empty();
  ctx.head_earliest_start =
      s.pending_.empty() ? kTimeInfinity : st.head_earliest;
  ctx.queue_earliest_start =
      s.pending_.empty() ? kTimeInfinity : st.queue_earliest;
  s.last_pass_ = ctx;

  if (s.post_pass_) s.post_pass_(ctx);
}

std::vector<std::unique_ptr<PassStage>> build_pipeline(
    BackfillMode mode, bool preempt_interstitial) {
  std::vector<std::unique_ptr<PassStage>> stages;
  stages.reserve(kNumPassStages);
  stages.push_back(std::make_unique<PriorityStage>());
  stages.push_back(std::make_unique<DispatchStage>(mode, preempt_interstitial));
  stages.push_back(std::make_unique<BackfillStage>(mode, preempt_interstitial));
  stages.push_back(std::make_unique<GateStage>());
  return stages;
}

}  // namespace istc::sched
