#include "sched/scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace istc::sched {

BatchScheduler::BatchScheduler(sim::Engine& engine, cluster::Machine machine,
                               PolicySpec policy)
    : engine_(engine),
      machine_(std::move(machine)),
      policy_(std::move(policy)),
      fairshare_(policy_.fairshare) {
  engine_.on_quiescent([this](SimTime now) { pass(now); });
}

void BatchScheduler::load(const workload::JobLog& log) {
  for (const auto& job : log.jobs()) submit(job);
}

void BatchScheduler::submit(const workload::Job& job) {
  job.check();
  ISTC_EXPECTS(job.cpus <= machine_.total_cpus());
  ISTC_EXPECTS(job.submit >= engine_.now());
  engine_.schedule(job.submit, [this, job] {
    trace_job(trace::EventKind::kJobSubmit, job, job.estimate);
    pending_.push_back(job);
  });
}

void BatchScheduler::set_tracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  engine_.set_tracer(tracer);
  if (!ISTC_TRACE_EVENTS_ON(tracer_)) return;
  // The outage calendar is static; record it once so every exporter can
  // draw the windows without consulting the cluster model.
  for (const auto& w : machine_.downtime().windows()) {
    trace::TraceEvent begin;
    begin.time = w.start;
    begin.kind = trace::EventKind::kDowntimeBegin;
    begin.aux_time = w.end;
    tracer_->record(begin);
    trace::TraceEvent end;
    end.time = w.end;
    end.kind = trace::EventKind::kDowntimeEnd;
    end.aux_time = w.start;
    tracer_->record(end);
  }
}

void BatchScheduler::trace_job(trace::EventKind kind, const workload::Job& job,
                               std::int64_t value, SimTime aux_time) {
  if (!ISTC_TRACE_EVENTS_ON(tracer_)) return;
  trace::TraceEvent e;
  e.time = engine_.now();
  e.kind = kind;
  e.interstitial = job.interstitial();
  e.job = static_cast<std::int64_t>(job.id);
  e.cpus = job.cpus;
  e.aux_time = aux_time;
  e.value = value;
  tracer_->record(e);
}

void BatchScheduler::set_post_pass_hook(
    std::function<void(const PassContext&)> hook) {
  post_pass_ = std::move(hook);
}

void BatchScheduler::set_kill_hook(
    std::function<void(const JobRecord&)> hook) {
  on_kill_ = std::move(hook);
}

void BatchScheduler::wake_at(SimTime t) {
  const SimTime now = engine_.now();
  if (t < now) return;
  if (t == now && in_pass_) return;  // this pass is already running
  if (next_wake_ > now && next_wake_ <= t) return;  // earlier wake covers it
  next_wake_ = t;
  ++stats_.wakeups;
  engine_.schedule(t, [] {});
}

SimTime BatchScheduler::earliest_start(const ResourceProfile& profile,
                                       const workload::Job& job,
                                       SimTime from) const {
  const auto& downtime = machine_.downtime();
  SimTime t = from;
  // Each constraint pushes t forward monotonically; converges because the
  // downtime calendar is finite and a time-of-day window opens every day.
  for (int iter = 0; iter < 1000; ++iter) {
    const SimTime fit = profile.earliest_fit(job.cpus, job.estimate, t);
    if (fit != t) {
      t = fit;
      continue;
    }
    if (policy_.time_of_day && !policy_.time_of_day->allowed(job, t)) {
      t = policy_.time_of_day->earliest_allowed(job, t);
      continue;
    }
    if (!downtime.can_run(t, job.estimate)) {
      if (downtime.is_down(t)) {
        t = downtime.up_again_at(t);
      } else {
        // Up now, but the job's estimate crosses the next window: resume
        // after that window ends.
        t = downtime.up_again_at(downtime.next_down_start(t));
      }
      continue;
    }
    return t;
  }
  ISTC_ASSERT(false);  // non-convergence means an unschedulable job
  return kTimeInfinity;
}

void BatchScheduler::start_job(const workload::Job& job, SimTime now) {
  if (job.interstitial()) {
    ++stats_.interstitial_starts;
  } else {
    ++stats_.native_starts;
  }
  trace_job(trace::EventKind::kJobStart, job, job.runtime, now + job.estimate);
  if (const auto it = reserved_start_.find(job.id);
      it != reserved_start_.end()) {
    const SimTime reserved = it->second;
    reserved_start_.erase(it);
    const bool honored = now <= reserved;
    if (ISTC_TRACE_COUNTERS_ON(tracer_)) {
      ++(honored ? tracer_->counters().reservations_honored
                 : tracer_->counters().reservations_violated);
    }
    trace_job(honored ? trace::EventKind::kReservationHonored
                      : trace::EventKind::kReservationViolated,
              job, honored ? 0 : now - reserved, reserved);
  }
  machine_.allocate(job.cpus);
  running_.emplace(job.id, Running{job, now, now + job.estimate});
  const workload::JobId id = job.id;
  engine_.schedule(now + job.runtime,
                   [this, id] { complete_job(id, engine_.now()); });
}

void BatchScheduler::complete_job(workload::JobId id, SimTime now) {
  const auto it = running_.find(id);
  if (it == running_.end()) {
    // Stale completion event of a preempted job: consume the kill marker.
    const auto killed = killed_pending_.find(id);
    ISTC_ASSERT(killed != killed_pending_.end());
    killed_pending_.erase(killed);
    return;
  }
  const Running& r = it->second;
  trace_job(trace::EventKind::kJobFinish, r.job, 0, r.start);
  machine_.release(r.job.cpus);
  // Interstitial jobs run outside the fair-share ledger: they are a
  // facility-level scavenger stream, not a competing allocation.
  if (!r.job.interstitial()) {
    fairshare_.charge(r.job.user, r.job.group, r.job.cpu_seconds(), now);
  }
  records_.push_back(JobRecord{r.job, r.start, now});
  ISTC_ASSERT(now - r.start == r.job.runtime);
  running_.erase(it);
}

void BatchScheduler::pass(SimTime now) {
  ISTC_ASSERT(!in_pass_);
  in_pass_ = true;
  ++stats_.passes;
  stats_.max_queue_length = std::max(stats_.max_queue_length, pending_.size());
  // Times the whole pass including the post-pass (interstitial) hook; the
  // wall-clock cost lands in the summary only, never the event stream.
  trace::ScopedPassTimer pass_timer(tracer_);

  // Future free-CPU profile from running jobs' *estimated* completions —
  // the only schedule knowledge a real resource manager has.
  ResourceProfile profile(now, machine_.total_cpus());
  for (const auto& [id, r] : running_) {
    ISTC_ASSERT(r.est_end > now);
    profile.reserve(now, r.est_end, r.job.cpus);
  }

  // Dynamic re-prioritization: recompute priorities every pass.
  std::vector<std::size_t> order(pending_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> prio(pending_.size());
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    prio[i] = fairshare_.priority(pending_[i], now);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (prio[a] != prio[b]) return prio[a] > prio[b];
                     if (pending_[a].submit != pending_[b].submit) {
                       return pending_[a].submit < pending_[b].submit;
                     }
                     return pending_[a].id < pending_[b].id;
                   });
  if (!pending_.empty() && ISTC_TRACE_EVENTS_ON(tracer_)) {
    trace::TraceEvent e;
    e.time = now;
    e.kind = trace::EventKind::kFairShareRecompute;
    e.value = static_cast<std::int64_t>(pending_.size());
    tracer_->record(e);
  }

  std::vector<bool> started(pending_.size(), false);
  SimTime head_earliest = kTimeInfinity;
  SimTime queue_earliest = kTimeInfinity;
  bool saw_blocked = false;

  for (const std::size_t idx : order) {
    const workload::Job& job = pending_[idx];
    if (ISTC_TRACE_COUNTERS_ON(tracer_)) {
      ++tracer_->counters().backfill_scans;
    }
    SimTime t = earliest_start(profile, job, now);
    // kNone (ablation baseline): strict priority order — once one job is
    // blocked, nothing junior may start, but earliest times still feed the
    // interstitial gate.
    const bool may_start =
        policy_.backfill != BackfillMode::kNone || !saw_blocked;
    // Preemption extension: a blocked native may evict running
    // interstitial jobs instead of waiting on them.
    if (policy_.preempt_interstitial && t != now && may_start &&
        !job.interstitial() && could_start_with_kills(job, now)) {
      if (preempt_for(job, now, profile)) {
        t = earliest_start(profile, job, now);
      }
    }
    if (t == now && may_start) {
      profile.reserve(now, now + job.estimate, job.cpus);
      start_job(job, now);
      if (saw_blocked) ++stats_.backfilled_starts;
      started[idx] = true;
      continue;
    }
    // EASY: only the head (highest-priority) blocked job reserves, so
    // later jobs may start now as long as they cannot delay it.
    // Conservative: every blocked job reserves, so nothing may delay any
    // higher-priority waiter (Ross's more restrictive backfill).
    const bool is_head = !saw_blocked;
    if (is_head) {
      saw_blocked = true;
      head_earliest = t;
    }
    queue_earliest = std::min(queue_earliest, t);
    if (is_head || policy_.backfill == BackfillMode::kConservative) {
      profile.reserve(t, t + job.estimate, job.cpus);
      ++stats_.reservations;
      if (ISTC_TRACE_COUNTERS_ON(tracer_)) {
        ++tracer_->counters().reservations_made;
      }
      if (ISTC_TRACE_EVENTS_ON(tracer_)) {
        // Only the newest reservation per job is scored honored/violated;
        // reservations drift every pass as estimates expire.
        reserved_start_[job.id] = t;
        trace_job(trace::EventKind::kReservationMade, job, 0, t);
      }
    }
  }

  if (!pending_.empty()) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (!started[i]) {
        if (w != i) pending_[w] = std::move(pending_[i]);
        ++w;
      }
    }
    pending_.resize(w);
  }

  // If the head job cannot start now, guarantee a future pass at its
  // earliest possible start even if no completion event lands earlier.
  if (!pending_.empty() && head_earliest < kTimeInfinity) {
    wake_at(head_earliest);
  }

  in_pass_ = false;

  if (post_pass_) {
    PassContext ctx;
    ctx.now = now;
    ctx.free_cpus = machine_.free_cpus();
    ctx.queue_empty = pending_.empty();
    ctx.head_earliest_start = pending_.empty() ? kTimeInfinity : head_earliest;
    ctx.queue_earliest_start =
        pending_.empty() ? kTimeInfinity : queue_earliest;
    post_pass_(ctx);
  }
}

bool BatchScheduler::could_start_with_kills(const workload::Job& job,
                                            SimTime now) const {
  int reclaimable = machine_.free_cpus();
  for (const auto& [id, r] : running_) {
    if (r.job.interstitial()) reclaimable += r.job.cpus;
  }
  if (reclaimable < job.cpus) return false;
  if (!machine_.downtime().can_run(now, job.estimate)) return false;
  if (policy_.time_of_day && !policy_.time_of_day->allowed(job, now)) {
    return false;
  }
  return true;
}

bool BatchScheduler::preempt_for(const workload::Job& job, SimTime now,
                                 ResourceProfile& profile) {
  // Youngest interstitial first: the least work is thrown away.
  std::vector<const Running*> victims;
  for (const auto& [id, r] : running_) {
    if (r.job.interstitial()) victims.push_back(&r);
  }
  std::sort(victims.begin(), victims.end(),
            [](const Running* a, const Running* b) {
              if (a->start != b->start) return a->start > b->start;
              return a->job.id > b->job.id;
            });
  for (const Running* v : victims) {
    if (profile.min_free(now, now + job.estimate) >= job.cpus) break;
    const workload::JobId id = v->job.id;
    trace_job(trace::EventKind::kJobKill, v->job, 0, v->start);
    machine_.release(v->job.cpus);
    profile.release(now, v->est_end, v->job.cpus);
    killed_records_.push_back(JobRecord{v->job, v->start, now});
    killed_pending_.insert(id);
    ++stats_.interstitial_kills;
    if (ISTC_TRACE_COUNTERS_ON(tracer_)) {
      ++tracer_->counters().interstitial_killed;
    }
    running_.erase(id);  // invalidates v; loop continues with others
    if (on_kill_) on_kill_(killed_records_.back());
  }
  return profile.min_free(now, now + job.estimate) >= job.cpus;
}

bool BatchScheduler::try_start_immediately(const workload::Job& job) {
  job.check();
  const SimTime now = engine_.now();
  if (job.cpus > machine_.free_cpus()) return false;
  if (!machine_.downtime().can_run(now, job.estimate)) return false;
  if (policy_.time_of_day && !policy_.time_of_day->allowed(job, now)) {
    return false;
  }
  // Meta-backfilled jobs never enter the queue: submit and start coincide.
  trace_job(trace::EventKind::kJobSubmit, job, job.estimate);
  start_job(job, now);
  return true;
}

RunResult BatchScheduler::take_result(SimTime span) {
  ISTC_EXPECTS(pending_.empty());
  ISTC_EXPECTS(running_.empty());
  RunResult result;
  result.machine = machine_.spec();
  result.span = span;
  result.sim_end = engine_.now();
  result.records = std::move(records_);
  result.killed = std::move(killed_records_);
  if (tracer_ != nullptr) result.trace = tracer_->summary();
  records_.clear();
  killed_records_.clear();
  return result;
}

}  // namespace istc::sched
