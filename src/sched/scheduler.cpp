#include "sched/scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "obs/profiler.hpp"
#include "util/assert.hpp"

namespace istc::sched {

BatchScheduler::BatchScheduler(sim::Engine& engine, cluster::Machine machine,
                               PolicySpec policy)
    : engine_(engine),
      machine_(std::move(machine)),
      policy_(std::move(policy)),
      fairshare_(policy_.fairshare),
      pipeline_(
          build_pipeline(policy_.backfill, policy_.preempt_interstitial)),
      profile_(engine_.now(), machine_.total_cpus()) {
  busy_integral_at_ = engine_.now();
  engine_.set_job_sink(this);
  engine_.on_quiescent([this](SimTime now) { pass(now); });
}

BatchScheduler::BatchScheduler(sim::Engine& engine, BatchScheduler& other)
    : engine_(engine),
      machine_(other.machine_),
      policy_(other.policy_),
      fairshare_(other.fairshare_),
      store_(other.store_),
      pending_(other.pending_),
      killed_records_(other.killed_records_),
      stats_(other.stats_),
      busy_native_cpus_(other.busy_native_cpus_),
      busy_interstitial_cpus_(other.busy_interstitial_cpus_),
      running_native_(other.running_native_),
      running_interstitial_(other.running_interstitial_),
      native_cpu_sec_(other.native_cpu_sec_),
      interstitial_cpu_sec_(other.interstitial_cpu_sec_),
      busy_integral_at_(other.busy_integral_at_),
      last_pass_(other.last_pass_),
      reserved_start_(other.reserved_start_),
      pipeline_(
          build_pipeline(policy_.backfill, policy_.preempt_interstitial)),
      profile_(other.profile_),
      prio_(other.prio_),
      prio_epoch_(other.prio_epoch_),
      pending_dirty_(other.pending_dirty_),
      order_cached_(other.order_cached_),
      queued_wakes_(other.queued_wakes_),
      outages_(other.outages_),
      next_outage_id_(other.next_outage_id_),
      failed_cpus_(other.failed_cpus_) {
  ISTC_EXPECTS(!other.in_pass_);
  // The big append-only logs travel copy-on-write: freeze the source's
  // prefix, then share it.
  other.submission_table_.freeze();
  other.records_.freeze();
  submission_table_ = other.submission_table_;
  records_ = other.records_;
  engine_.set_job_sink(this);
  engine_.on_quiescent([this](SimTime now) { pass(now); });
}

void BatchScheduler::load(const workload::JobLog& log) {
  // One reservation covers every arrival event; completion events reuse
  // the slots arrivals vacate, so steady state stays allocation-free.
  engine_.reserve_events(log.size());
  submission_table_.reserve_extra(log.size());
  for (const auto& job : log.jobs()) submit(job);
}

void BatchScheduler::submit(const workload::Job& job) {
  job.check();
  ISTC_EXPECTS(job.cpus <= machine_.total_cpus());
  ISTC_EXPECTS(job.submit >= engine_.now());
  const auto index = static_cast<std::uint32_t>(submission_table_.size());
  submission_table_.push_back(job);
  engine_.schedule_job_submit(job.submit, index);
}

void BatchScheduler::job_submit(std::uint32_t index) {
  const workload::Job& job = submission_table_[index];
  trace_job(trace::EventKind::kJobSubmit, job, job.estimate);
  pending_.push_back(store_.acquire(job));
  pending_dirty_ = true;  // cached priority order no longer covers it
}

void BatchScheduler::job_finish(std::uint32_t slot) {
  complete_job(slot, engine_.now());
}

void BatchScheduler::set_tracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  engine_.set_tracer(tracer);
  if (!ISTC_TRACE_EVENTS_ON(tracer_)) return;
  // The outage calendar is static; record it once so every exporter can
  // draw the windows without consulting the cluster model.
  for (const auto& w : machine_.downtime().windows()) {
    trace::TraceEvent begin;
    begin.time = w.start;
    begin.kind = trace::EventKind::kDowntimeBegin;
    begin.aux_time = w.end;
    tracer_->record(begin);
    trace::TraceEvent end;
    end.time = w.end;
    end.kind = trace::EventKind::kDowntimeEnd;
    end.aux_time = w.start;
    tracer_->record(end);
  }
}

void BatchScheduler::trace_job(trace::EventKind kind, const workload::Job& job,
                               std::int64_t value, SimTime aux_time) {
  if (!ISTC_TRACE_EVENTS_ON(tracer_)) return;
  trace::TraceEvent e;
  e.time = engine_.now();
  e.kind = kind;
  e.interstitial = job.interstitial();
  e.job = static_cast<std::int64_t>(job.id);
  e.cpus = job.cpus;
  e.aux_time = aux_time;
  e.value = value;
  tracer_->record(e);
}

void BatchScheduler::set_post_pass_hook(
    std::function<void(const PassContext&)> hook) {
  post_pass_ = std::move(hook);
}

void BatchScheduler::set_kill_hook(
    std::function<void(const JobRecord&, KillReason)> hook) {
  on_kill_ = std::move(hook);
}

void BatchScheduler::wake_at(SimTime t) {
  const SimTime now = engine_.now();
  if (t < now) return;
  if (t == now && in_pass_) return;  // this pass is already running
  // Any wake already queued in (now, t] covers this one: the pass it
  // triggers re-evaluates the queue and re-arms a later wake if still
  // needed.  (The set, pruned as wakes fire, is what the old single
  // next_wake_ register got wrong: after its wake fired the stale value
  // kept "covering" nothing while duplicate events piled up.)
  const auto it = queued_wakes_.upper_bound(now);
  if (it != queued_wakes_.end() && *it <= t) return;
  queued_wakes_.insert(t);
  ++stats_.wakeups;
  engine_.schedule_wake(t);
}

SimTime BatchScheduler::earliest_start(const ResourceProfile& profile,
                                       const workload::Job& job,
                                       SimTime from) const {
  const auto& downtime = machine_.downtime();
  SimTime t = from;
  // Each constraint pushes t forward monotonically; converges because the
  // downtime calendar is finite and a time-of-day window opens every day.
  for (int iter = 0; iter < 1000; ++iter) {
    const SimTime fit = profile.earliest_fit(job.cpus, job.estimate, t);
    if (fit != t) {
      t = fit;
      continue;
    }
    if (policy_.time_of_day && !policy_.time_of_day->allowed(job, t)) {
      t = policy_.time_of_day->earliest_allowed(job, t);
      continue;
    }
    if (!downtime.can_run(t, job.estimate)) {
      if (downtime.is_down(t)) {
        t = downtime.up_again_at(t);
      } else {
        // Up now, but the job's estimate crosses the next window: resume
        // after that window ends.
        t = downtime.up_again_at(downtime.next_down_start(t));
      }
      continue;
    }
    return t;
  }
  ISTC_ASSERT(false);  // non-convergence means an unschedulable job
  return kTimeInfinity;
}

void BatchScheduler::advance_busy_integrals(SimTime now) {
  ISTC_ASSERT(now >= busy_integral_at_);
  const SimTime dt = now - busy_integral_at_;
  if (dt > 0) {
    native_cpu_sec_ +=
        static_cast<std::uint64_t>(busy_native_cpus_) * static_cast<std::uint64_t>(dt);
    interstitial_cpu_sec_ += static_cast<std::uint64_t>(busy_interstitial_cpus_) *
                             static_cast<std::uint64_t>(dt);
    busy_integral_at_ = now;
  }
}

void BatchScheduler::start_job(std::uint32_t slot, SimTime now) {
  const workload::Job& job = store_.job(slot);
  advance_busy_integrals(now);
  if (job.interstitial()) {
    ++stats_.interstitial_starts;
    busy_interstitial_cpus_ += job.cpus;
    ++running_interstitial_;
  } else {
    ++stats_.native_starts;
    busy_native_cpus_ += job.cpus;
    ++running_native_;
  }
  // Observational start hook: fires before the allocation so the reported
  // free-CPU count is the interstice width this dispatch landed in.
  if (on_start_) on_start_(job, machine_.free_cpus());
  trace_job(trace::EventKind::kJobStart, job, job.runtime, now + job.estimate);
  if (const auto it = reserved_start_.find(job.id);
      it != reserved_start_.end()) {
    const SimTime reserved = it->second;
    reserved_start_.erase(it);
    const bool honored = now <= reserved;
    if (ISTC_TRACE_COUNTERS_ON(tracer_)) {
      ++(honored ? tracer_->counters().reservations_honored
                 : tracer_->counters().reservations_violated);
    }
    trace_job(honored ? trace::EventKind::kReservationHonored
                      : trace::EventKind::kReservationViolated,
              job, honored ? 0 : now - reserved, reserved);
  }
  machine_.allocate(job.cpus);
  // Persistent-profile delta: the job occupies cpus until its estimated
  // end.  Outside a pass (the interstitial driver's immediate starts) the
  // rebuild-mode profile is stale until the next pass reconstructs it, so
  // only the incremental path applies the delta there.
  if (in_pass_ || policy_.incremental_profile) {
    profile_.reserve(now, now + job.estimate, job.cpus);
  }
  store_.mark_running(slot, now, now + job.estimate);
  engine_.schedule_job_finish(now + job.runtime, slot);
}

void BatchScheduler::complete_job(std::uint32_t slot, SimTime now) {
  if (store_.state(slot) == SlotState::kZombie) {
    // Stale completion event of a killed job — the last reference to the
    // zombie slot; free it.
    store_.release(slot);
    return;
  }
  ISTC_ASSERT(store_.state(slot) == SlotState::kRunning);
  const workload::Job& job = store_.job(slot);
  const SimTime start = store_.start(slot);
  const SimTime est_end = store_.est_end(slot);
  advance_busy_integrals(now);
  if (job.interstitial()) {
    busy_interstitial_cpus_ -= job.cpus;
    --running_interstitial_;
  } else {
    busy_native_cpus_ -= job.cpus;
    --running_native_;
  }
  trace_job(trace::EventKind::kJobFinish, job, 0, start);
  machine_.release(job.cpus);
  // Persistent-profile delta: return the estimated remainder.  When the
  // estimate was exact (est_end == now) nothing of it lies in the future.
  if (policy_.incremental_profile && est_end > now) {
    profile_.release(now, est_end, job.cpus);
  }
  // Interstitial jobs run outside the fair-share ledger: they are a
  // facility-level scavenger stream, not a competing allocation.
  if (!job.interstitial()) {
    fairshare_.charge(job.user, job.group, job.cpu_seconds(), now);
  }
  records_.push_back(JobRecord{job, start, now});
  ISTC_ASSERT(now - start == job.runtime);
  store_.release(slot);
}

ResourceProfile BatchScheduler::rebuild_profile(SimTime now) const {
  // Future free-CPU profile from running jobs' *estimated* completions —
  // the only schedule knowledge a real resource manager has.
  ResourceProfile profile(now, machine_.total_cpus());
  for (std::uint32_t s = 0; s < store_.slots(); ++s) {
    if (store_.state(s) != SlotState::kRunning) continue;
    ISTC_ASSERT(store_.est_end(s) > now);
    profile.reserve(now, store_.est_end(s), store_.cpus(s));
  }
  // Failed capacity is allocated on the machine but backed by no running
  // job; re-reserve it or the rebuilt profile would offer downed CPUs.
  // (Repair events fire before the pass at their timestamp, so every
  // surviving outage strictly outlives now.)
  for (const auto& outage : outages_) {
    ISTC_ASSERT(outage.until > now);
    profile.reserve(now, outage.until, outage.cpus);
  }
  return profile;
}

void BatchScheduler::prepare_profile(SimTime now) {
  if (policy_.incremental_profile) {
    profile_.advance_origin(now);
#ifdef ISTC_PARANOID
    // Cross-check the incrementally maintained profile against a
    // from-scratch reconstruction: they must be the same step function.
    if (ISTC_TRACE_COUNTERS_ON(tracer_)) {
      ++tracer_->counters().profile_rebuilds;
    }
    ISTC_ASSERT(profile_.same_function(rebuild_profile(now)));
#endif
  } else {
    profile_ = rebuild_profile(now);
    if (ISTC_TRACE_COUNTERS_ON(tracer_)) {
      ++tracer_->counters().profile_rebuilds;
    }
  }
}

void BatchScheduler::reserve_temp(SimTime start, SimTime end, int cpus) {
  profile_.reserve(start, end, cpus);
  temp_reservations_.push_back(TempReservation{start, end, cpus});
}

void BatchScheduler::make_reservation(const workload::Job& job, SimTime t) {
  reserve_temp(t, t + job.estimate, job.cpus);
  ++stats_.reservations;
  if (ISTC_TRACE_COUNTERS_ON(tracer_)) {
    ++tracer_->counters().reservations_made;
  }
  if (ISTC_TRACE_EVENTS_ON(tracer_)) {
    // Only the newest reservation per job is scored honored/violated;
    // reservations drift every pass as estimates expire.
    reserved_start_[job.id] = t;
    trace_job(trace::EventKind::kReservationMade, job, 0, t);
  }
}

bool BatchScheduler::try_dispatch(std::uint32_t slot, SimTime now,
                                  bool may_start, bool preempt,
                                  SimTime& earliest_out) {
  if (ISTC_TRACE_COUNTERS_ON(tracer_)) {
    ++tracer_->counters().backfill_scans;
  }
  const workload::Job& job = store_.job(slot);
  SimTime t = earliest_start(profile_, job, now);
  // Preemption extension: a blocked native may evict running interstitial
  // jobs instead of waiting on them.
  if (preempt && t != now && may_start && !job.interstitial() &&
      could_start_with_kills(job, now)) {
    if (preempt_for(job, now)) {
      t = earliest_start(profile_, job, now);
    }
  }
  earliest_out = t;
  if (t == now && may_start) {
    start_job(slot, now);  // applies the profile delta itself
    return true;
  }
  return false;
}

SchedulerProbe BatchScheduler::probe() const {
  SchedulerProbe p;
  const SimTime now = engine_.now();
  p.now = now;
  p.busy_native_cpus = busy_native_cpus_;
  p.busy_interstitial_cpus = busy_interstitial_cpus_;
  p.free_cpus = machine_.free_cpus();
  p.offline_cpus = failed_cpus_;
  p.queue_native = pending_.size();
  p.running_native = running_native_;
  p.running_interstitial = running_interstitial_;
  if (!last_pass_.queue_empty &&
      last_pass_.head_earliest_start != kTimeInfinity) {
    // The head's earliest start was computed at the last pass; clamp in
    // case the probe fires after that estimate has already arrived.
    p.head_backfill_wall = std::max<SimTime>(0, last_pass_.head_earliest_start - now);
  }
  if (now >= profile_.origin()) {
    const auto step = profile_.step_at(now);
    p.interstice_cpus = step.free;
    if (step.until != kTimeInfinity) p.interstice_hold = step.until - now;
    p.profile_steps = profile_.steps();
  }
  // Project the lazily advanced integrals to now without mutating state.
  const std::uint64_t dt = static_cast<std::uint64_t>(now - busy_integral_at_);
  p.native_cpu_sec =
      native_cpu_sec_ + static_cast<std::uint64_t>(busy_native_cpus_) * dt;
  p.interstitial_cpu_sec =
      interstitial_cpu_sec_ +
      static_cast<std::uint64_t>(busy_interstitial_cpus_) * dt;
  return p;
}

void BatchScheduler::pass(SimTime now) {
  ISTC_ASSERT(!in_pass_);
  in_pass_ = true;
  ++stats_.passes;
  stats_.max_queue_length = std::max(stats_.max_queue_length, pending_.size());
  // Pass timing is one chained sequence of clock reads at segment
  // boundaries, so stage_setup_us + sum(stage_us) == sched_pass_us_total
  // holds exactly by construction (pinned by tests).  Wall-clock cost
  // lands in the summary only, never the event stream.  The obs stage
  // profiler shares the same lap chain, and samples 1 in 16 passes: a
  // pass is often only a few microseconds, so timing every one would
  // make the profiler the dominant cost of the thing it profiles.
  const bool counters = ISTC_TRACE_COUNTERS_ON(tracer_);
  const bool profiled = obs::enabled() && (obs_sample_tick_++ & 15u) == 0;
  const bool timed = counters || profiled;
  std::uint64_t pass_us = 0;
  std::chrono::steady_clock::time_point mark{};
  if (timed) mark = std::chrono::steady_clock::now();
  const auto lap = [&mark]() -> std::uint64_t {
    const auto t1 = std::chrono::steady_clock::now();
    const auto us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - mark)
            .count());
    mark = t1;
    return us;
  };

  // Wakes scheduled at or before this instant have fired.
  queued_wakes_.erase(queued_wakes_.begin(), queued_wakes_.upper_bound(now));

  prepare_profile(now);

  pass_state_.reset(now, pending_.size());
  if (timed) {
    const std::uint64_t us = lap();
    if (counters) tracer_->counters().stage_setup_us += us;
    if (profiled) obs::observe_stage_us(obs::Stage::kSchedSetup, us);
    pass_us += us;
  }
  for (const auto& stage : pipeline_) {
    ++stage->stats_.runs;
    if (!timed) {
      stage->run(*this, pass_state_);
      continue;
    }
    stage->run(*this, pass_state_);
    const std::uint64_t us = lap();
    stage->stats_.us_total += us;
    stage->stats_.us_max = std::max(stage->stats_.us_max, us);
    const auto slot = static_cast<int>(stage->kind());
    if (counters) {
      auto& c = tracer_->counters();
      c.stage_us[slot] += us;
      ++c.stage_runs[slot];
    }
    if (profiled) {
      obs::observe_stage_us(
          static_cast<obs::Stage>(
              static_cast<int>(obs::Stage::kSchedPriority) + slot),
          us);
    }
    pass_us += us;
  }
  if (counters) {
    auto& c = tracer_->counters();
    ++c.sched_passes;
    c.sched_pass_us_total += pass_us;
    c.sched_pass_us_max = std::max(c.sched_pass_us_max, pass_us);
  }
  // GateStage cleared in_pass_ and ran the post-pass hook.
  ISTC_ASSERT(!in_pass_);
}

bool BatchScheduler::could_start_with_kills(const workload::Job& job,
                                            SimTime now) const {
  int reclaimable = machine_.free_cpus();
  for (std::uint32_t s = 0; s < store_.slots(); ++s) {
    if (store_.state(s) == SlotState::kRunning && store_.interstitial(s)) {
      reclaimable += store_.cpus(s);
    }
  }
  if (reclaimable < job.cpus) return false;
  if (!machine_.downtime().can_run(now, job.estimate)) return false;
  if (policy_.time_of_day && !policy_.time_of_day->allowed(job, now)) {
    return false;
  }
  return true;
}

void BatchScheduler::kill_running_job(std::uint32_t slot, KillReason reason) {
  ISTC_ASSERT(store_.state(slot) == SlotState::kRunning);
  const workload::Job& job = store_.job(slot);
  const SimTime start = store_.start(slot);
  const SimTime est_end = store_.est_end(slot);
  const SimTime now = engine_.now();
  advance_busy_integrals(now);
  if (job.interstitial()) {
    busy_interstitial_cpus_ -= job.cpus;
    --running_interstitial_;
  } else {
    busy_native_cpus_ -= job.cpus;
    --running_native_;
  }
  trace_job(trace::EventKind::kJobKill, job, static_cast<std::int64_t>(reason),
            start);
  machine_.release(job.cpus);
  // Permanent profile delta: the victim's remaining reservation goes away
  // (its origin-side history was already chopped by advance_origin).  A
  // fault kill can race a same-instant completion estimate: when est_end
  // == now nothing of the reservation lies in the future.
  if ((in_pass_ || policy_.incremental_profile) && est_end > now) {
    profile_.release(now, est_end, job.cpus);
  }
  killed_records_.push_back(JobRecord{job, start, now});
  // The slot parks as a zombie: the queued finish event still references
  // it, and its firing frees the slot.
  store_.mark_zombie(slot);
  if (job.interstitial()) ++stats_.interstitial_kills;
  if (ISTC_TRACE_COUNTERS_ON(tracer_)) {
    auto& c = tracer_->counters();
    if (reason == KillReason::kPreempted) {
      ++c.interstitial_killed;
    } else {
      ++(job.interstitial() ? c.fault_killed_interstitial
                            : c.fault_killed_native);
    }
  }
  if (on_kill_) on_kill_(killed_records_.back(), reason);
}

bool BatchScheduler::preempt_for(const workload::Job& job, SimTime now) {
  // Youngest interstitial first: the least work is thrown away.  One scan
  // over the hot state/class columns collects the candidates.
  victim_buf_.clear();
  for (std::uint32_t s = 0; s < store_.slots(); ++s) {
    if (store_.state(s) == SlotState::kRunning && store_.interstitial(s)) {
      victim_buf_.push_back(s);
    }
  }
  std::sort(victim_buf_.begin(), victim_buf_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              if (store_.start(a) != store_.start(b)) {
                return store_.start(a) > store_.start(b);
              }
              return store_.id(a) > store_.id(b);
            });
  for (const std::uint32_t v : victim_buf_) {
    if (profile_.min_free(now, now + job.estimate) >= job.cpus) break;
    kill_running_job(v, KillReason::kPreempted);
  }
  return profile_.min_free(now, now + job.estimate) >= job.cpus;
}

std::vector<JobRecord> BatchScheduler::fail_capacity(int cpus, SimTime until,
                                                     KillReason reason) {
  const SimTime now = engine_.now();
  ISTC_EXPECTS(until > now);
  ISTC_EXPECTS(reason != KillReason::kPreempted);
  // Overlapping failures compose: a second fault can only take down what
  // is still up.
  cpus = std::min(cpus, machine_.total_cpus() - failed_cpus_);
  if (cpus <= 0) return {};
  const std::size_t first_killed = killed_records_.size();
  if (machine_.free_cpus() < cpus) {
    // Youngest running job first (least work lost), natives and
    // interstitials alike: an unplanned failure spares nobody.  Sorted by
    // (start, id) so fault schedules are independent of storage order.
    victim_buf_.clear();
    for (std::uint32_t s = 0; s < store_.slots(); ++s) {
      if (store_.state(s) == SlotState::kRunning) victim_buf_.push_back(s);
    }
    std::sort(victim_buf_.begin(), victim_buf_.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                if (store_.start(a) != store_.start(b)) {
                  return store_.start(a) > store_.start(b);
                }
                return store_.id(a) > store_.id(b);
              });
    for (const std::uint32_t s : victim_buf_) {
      if (machine_.free_cpus() >= cpus) break;
      kill_running_job(s, reason);
    }
  }
  ISTC_ASSERT(machine_.free_cpus() >= cpus);
  machine_.allocate(cpus);
  failed_cpus_ += cpus;
  // The downed capacity is a reservation ending at the repair time, so
  // backfill plans around the outage exactly like around running jobs.
  if (in_pass_ || policy_.incremental_profile) {
    profile_.reserve(now, until, cpus);
  }
  const std::uint32_t outage_id = next_outage_id_++;
  outages_.push_back(CapacityOutage{outage_id, cpus, until});
  // Typed repair event: the queue holds a POD entry carrying the outage
  // id, not a closure (run forks require a closure-free mid-run queue).
  engine_.schedule_capacity_repair(until, outage_id);
  return {killed_records_.begin() +
              static_cast<std::ptrdiff_t>(first_killed),
          killed_records_.end()};
}

void BatchScheduler::capacity_repair(std::uint32_t outage_id) {
  const auto it =
      std::find_if(outages_.begin(), outages_.end(),
                   [outage_id](const CapacityOutage& o) {
                     return o.id == outage_id;
                   });
  ISTC_ASSERT(it != outages_.end());
  const int cpus = it->cpus;
  ISTC_ASSERT(it->until == engine_.now());
  machine_.release(cpus);
  failed_cpus_ -= cpus;
  ISTC_ASSERT(failed_cpus_ >= 0);
  outages_.erase(it);
  // The matching profile reservation ran [failure, until) and expires at
  // this very instant — no release needed; the quiescent pass that follows
  // this event re-dispatches onto the restored CPUs.
  if (ISTC_TRACE_EVENTS_ON(tracer_)) {
    trace::TraceEvent e;
    e.time = engine_.now();
    e.kind = trace::EventKind::kFaultRepair;
    e.cpus = cpus;
    tracer_->record(e);
  }
}

bool BatchScheduler::try_start_immediately(const workload::Job& job) {
  job.check();
  const SimTime now = engine_.now();
  if (job.cpus > machine_.free_cpus()) return false;
  if (!machine_.downtime().can_run(now, job.estimate)) return false;
  if (policy_.time_of_day && !policy_.time_of_day->allowed(job, now)) {
    return false;
  }
  // Meta-backfilled jobs never enter the queue: submit and start coincide.
  trace_job(trace::EventKind::kJobSubmit, job, job.estimate);
  start_job(store_.acquire(job), now);
  return true;
}

RunResult BatchScheduler::take_result(SimTime span) {
  ISTC_EXPECTS(pending_.empty());
  ISTC_EXPECTS(running_count() == 0);
  // A drained run has fired every finish event, so no zombie slot (or any
  // live slot) can remain.
  ISTC_EXPECTS(store_.live() == 0);
  RunResult result;
  result.machine = machine_.spec();
  result.span = span;
  result.sim_end = engine_.now();
  result.records = records_.take();
  result.killed = std::move(killed_records_);
  if (tracer_ != nullptr) result.trace = tracer_->summary();
  killed_records_.clear();
  return result;
}

}  // namespace istc::sched
