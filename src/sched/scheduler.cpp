#include "sched/scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace istc::sched {

BatchScheduler::BatchScheduler(sim::Engine& engine, cluster::Machine machine,
                               PolicySpec policy)
    : engine_(engine),
      machine_(std::move(machine)),
      policy_(std::move(policy)),
      fairshare_(policy_.fairshare) {
  engine_.on_quiescent([this](SimTime now) { pass(now); });
}

void BatchScheduler::load(const workload::JobLog& log) {
  for (const auto& job : log.jobs()) submit(job);
}

void BatchScheduler::submit(const workload::Job& job) {
  job.check();
  ISTC_EXPECTS(job.cpus <= machine_.total_cpus());
  ISTC_EXPECTS(job.submit >= engine_.now());
  engine_.schedule(job.submit, [this, job] { pending_.push_back(job); });
}

void BatchScheduler::set_post_pass_hook(
    std::function<void(const PassContext&)> hook) {
  post_pass_ = std::move(hook);
}

void BatchScheduler::set_kill_hook(
    std::function<void(const JobRecord&)> hook) {
  on_kill_ = std::move(hook);
}

void BatchScheduler::wake_at(SimTime t) {
  const SimTime now = engine_.now();
  if (t < now) return;
  if (t == now && in_pass_) return;  // this pass is already running
  if (next_wake_ > now && next_wake_ <= t) return;  // earlier wake covers it
  next_wake_ = t;
  ++stats_.wakeups;
  engine_.schedule(t, [] {});
}

SimTime BatchScheduler::earliest_start(const ResourceProfile& profile,
                                       const workload::Job& job,
                                       SimTime from) const {
  const auto& downtime = machine_.downtime();
  SimTime t = from;
  // Each constraint pushes t forward monotonically; converges because the
  // downtime calendar is finite and a time-of-day window opens every day.
  for (int iter = 0; iter < 1000; ++iter) {
    const SimTime fit = profile.earliest_fit(job.cpus, job.estimate, t);
    if (fit != t) {
      t = fit;
      continue;
    }
    if (policy_.time_of_day && !policy_.time_of_day->allowed(job, t)) {
      t = policy_.time_of_day->earliest_allowed(job, t);
      continue;
    }
    if (!downtime.can_run(t, job.estimate)) {
      if (downtime.is_down(t)) {
        t = downtime.up_again_at(t);
      } else {
        // Up now, but the job's estimate crosses the next window: resume
        // after that window ends.
        t = downtime.up_again_at(downtime.next_down_start(t));
      }
      continue;
    }
    return t;
  }
  ISTC_ASSERT(false);  // non-convergence means an unschedulable job
  return kTimeInfinity;
}

void BatchScheduler::start_job(const workload::Job& job, SimTime now) {
  if (job.interstitial()) {
    ++stats_.interstitial_starts;
  } else {
    ++stats_.native_starts;
  }
  machine_.allocate(job.cpus);
  running_.emplace(job.id, Running{job, now, now + job.estimate});
  const workload::JobId id = job.id;
  engine_.schedule(now + job.runtime,
                   [this, id] { complete_job(id, engine_.now()); });
}

void BatchScheduler::complete_job(workload::JobId id, SimTime now) {
  const auto it = running_.find(id);
  if (it == running_.end()) {
    // Stale completion event of a preempted job: consume the kill marker.
    const auto killed = killed_pending_.find(id);
    ISTC_ASSERT(killed != killed_pending_.end());
    killed_pending_.erase(killed);
    return;
  }
  const Running& r = it->second;
  machine_.release(r.job.cpus);
  // Interstitial jobs run outside the fair-share ledger: they are a
  // facility-level scavenger stream, not a competing allocation.
  if (!r.job.interstitial()) {
    fairshare_.charge(r.job.user, r.job.group, r.job.cpu_seconds(), now);
  }
  records_.push_back(JobRecord{r.job, r.start, now});
  ISTC_ASSERT(now - r.start == r.job.runtime);
  running_.erase(it);
}

void BatchScheduler::pass(SimTime now) {
  ISTC_ASSERT(!in_pass_);
  in_pass_ = true;
  ++stats_.passes;
  stats_.max_queue_length = std::max(stats_.max_queue_length, pending_.size());

  // Future free-CPU profile from running jobs' *estimated* completions —
  // the only schedule knowledge a real resource manager has.
  ResourceProfile profile(now, machine_.total_cpus());
  for (const auto& [id, r] : running_) {
    ISTC_ASSERT(r.est_end > now);
    profile.reserve(now, r.est_end, r.job.cpus);
  }

  // Dynamic re-prioritization: recompute priorities every pass.
  std::vector<std::size_t> order(pending_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> prio(pending_.size());
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    prio[i] = fairshare_.priority(pending_[i], now);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (prio[a] != prio[b]) return prio[a] > prio[b];
                     if (pending_[a].submit != pending_[b].submit) {
                       return pending_[a].submit < pending_[b].submit;
                     }
                     return pending_[a].id < pending_[b].id;
                   });

  std::vector<bool> started(pending_.size(), false);
  SimTime head_earliest = kTimeInfinity;
  SimTime queue_earliest = kTimeInfinity;
  bool saw_blocked = false;

  for (const std::size_t idx : order) {
    const workload::Job& job = pending_[idx];
    SimTime t = earliest_start(profile, job, now);
    // kNone (ablation baseline): strict priority order — once one job is
    // blocked, nothing junior may start, but earliest times still feed the
    // interstitial gate.
    const bool may_start =
        policy_.backfill != BackfillMode::kNone || !saw_blocked;
    // Preemption extension: a blocked native may evict running
    // interstitial jobs instead of waiting on them.
    if (policy_.preempt_interstitial && t != now && may_start &&
        !job.interstitial() && could_start_with_kills(job, now)) {
      if (preempt_for(job, now, profile)) {
        t = earliest_start(profile, job, now);
      }
    }
    if (t == now && may_start) {
      profile.reserve(now, now + job.estimate, job.cpus);
      start_job(job, now);
      if (saw_blocked) ++stats_.backfilled_starts;
      started[idx] = true;
      continue;
    }
    // EASY: only the head (highest-priority) blocked job reserves, so
    // later jobs may start now as long as they cannot delay it.
    // Conservative: every blocked job reserves, so nothing may delay any
    // higher-priority waiter (Ross's more restrictive backfill).
    const bool is_head = !saw_blocked;
    if (is_head) {
      saw_blocked = true;
      head_earliest = t;
    }
    queue_earliest = std::min(queue_earliest, t);
    if (is_head || policy_.backfill == BackfillMode::kConservative) {
      profile.reserve(t, t + job.estimate, job.cpus);
      ++stats_.reservations;
    }
  }

  if (!pending_.empty()) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (!started[i]) {
        if (w != i) pending_[w] = std::move(pending_[i]);
        ++w;
      }
    }
    pending_.resize(w);
  }

  // If the head job cannot start now, guarantee a future pass at its
  // earliest possible start even if no completion event lands earlier.
  if (!pending_.empty() && head_earliest < kTimeInfinity) {
    wake_at(head_earliest);
  }

  in_pass_ = false;

  if (post_pass_) {
    PassContext ctx;
    ctx.now = now;
    ctx.free_cpus = machine_.free_cpus();
    ctx.queue_empty = pending_.empty();
    ctx.head_earliest_start = pending_.empty() ? kTimeInfinity : head_earliest;
    ctx.queue_earliest_start =
        pending_.empty() ? kTimeInfinity : queue_earliest;
    post_pass_(ctx);
  }
}

bool BatchScheduler::could_start_with_kills(const workload::Job& job,
                                            SimTime now) const {
  int reclaimable = machine_.free_cpus();
  for (const auto& [id, r] : running_) {
    if (r.job.interstitial()) reclaimable += r.job.cpus;
  }
  if (reclaimable < job.cpus) return false;
  if (!machine_.downtime().can_run(now, job.estimate)) return false;
  if (policy_.time_of_day && !policy_.time_of_day->allowed(job, now)) {
    return false;
  }
  return true;
}

bool BatchScheduler::preempt_for(const workload::Job& job, SimTime now,
                                 ResourceProfile& profile) {
  // Youngest interstitial first: the least work is thrown away.
  std::vector<const Running*> victims;
  for (const auto& [id, r] : running_) {
    if (r.job.interstitial()) victims.push_back(&r);
  }
  std::sort(victims.begin(), victims.end(),
            [](const Running* a, const Running* b) {
              if (a->start != b->start) return a->start > b->start;
              return a->job.id > b->job.id;
            });
  for (const Running* v : victims) {
    if (profile.min_free(now, now + job.estimate) >= job.cpus) break;
    const workload::JobId id = v->job.id;
    machine_.release(v->job.cpus);
    profile.release(now, v->est_end, v->job.cpus);
    killed_records_.push_back(JobRecord{v->job, v->start, now});
    killed_pending_.insert(id);
    ++stats_.interstitial_kills;
    running_.erase(id);  // invalidates v; loop continues with others
    if (on_kill_) on_kill_(killed_records_.back());
  }
  return profile.min_free(now, now + job.estimate) >= job.cpus;
}

bool BatchScheduler::try_start_immediately(const workload::Job& job) {
  job.check();
  const SimTime now = engine_.now();
  if (job.cpus > machine_.free_cpus()) return false;
  if (!machine_.downtime().can_run(now, job.estimate)) return false;
  if (policy_.time_of_day && !policy_.time_of_day->allowed(job, now)) {
    return false;
  }
  start_job(job, now);
  return true;
}

RunResult BatchScheduler::take_result(SimTime span) {
  ISTC_EXPECTS(pending_.empty());
  ISTC_EXPECTS(running_.empty());
  RunResult result;
  result.machine = machine_.spec();
  result.span = span;
  result.sim_end = engine_.now();
  result.records = std::move(records_);
  result.killed = std::move(killed_records_);
  records_.clear();
  killed_records_.clear();
  return result;
}

}  // namespace istc::sched
