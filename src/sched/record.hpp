#pragma once

#include <vector>

#include "cluster/machine.hpp"
#include "trace/summary.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"
#include "workload/job.hpp"

/// \file record.hpp
/// Scheduling outcomes.  A JobRecord is the simulator's analogue of the
/// paper's "job log returned from the BIRMinator simulations": size plus
/// submit, start, and finish times for both native and interstitial jobs.

namespace istc::sched {

/// Why a running job was killed before completion.  Preemption is a
/// scheduling decision aimed only at interstitial jobs; the fault reasons
/// are unplanned failures (fault::FaultInjector) that spare nobody.
enum class KillReason : std::uint8_t {
  kPreempted = 0,     ///< evicted so a blocked native could start
  kMachineCrash = 1,  ///< whole-machine crash (everything running dies)
  kNodeFailure = 2,   ///< partial-capacity node failure
};

/// Stable lower-case name ("preempted", "machine_crash", "node_failure").
constexpr const char* kill_reason_name(KillReason reason) {
  switch (reason) {
    case KillReason::kPreempted:
      return "preempted";
    case KillReason::kMachineCrash:
      return "machine_crash";
    case KillReason::kNodeFailure:
      return "node_failure";
  }
  return "unknown";
}

struct JobRecord {
  workload::Job job;
  SimTime start = -1;
  SimTime end = -1;

  Seconds wait() const {
    ISTC_EXPECTS(start >= job.submit);
    return start - job.submit;
  }

  /// The paper's expansion factor EF = 1 + wait / runtime.
  double expansion_factor() const {
    return 1.0 + static_cast<double>(wait()) /
                     static_cast<double>(job.runtime);
  }

  double cpu_seconds() const { return job.cpu_seconds(); }
  bool interstitial() const { return job.interstitial(); }
};

/// Result of one simulation run.
struct RunResult {
  cluster::MachineSpec machine;
  /// Native log span (the paper's "times days" window).
  SimTime span = 0;
  /// Time at which the simulation drained completely.
  SimTime sim_end = 0;
  /// Completed jobs in completion order (native and interstitial mixed).
  std::vector<JobRecord> records;
  /// Interstitial jobs killed by native preemption (extension feature);
  /// end is the kill time, so end - start < runtime and cpu-time in
  /// [start, end) is the wasted work.
  std::vector<JobRecord> killed;
  /// Scheduling-cost counters, populated when a trace::Tracer was attached
  /// to the run (all-zero otherwise); see trace/summary.hpp.
  trace::TraceSummary trace;

  /// Wasted CPU-seconds of killed interstitial jobs.
  double wasted_cpu_seconds() const;

  std::size_t native_count() const;
  std::size_t interstitial_count() const;
};

inline std::size_t RunResult::native_count() const {
  std::size_t n = 0;
  for (const auto& r : records) n += r.interstitial() ? 0u : 1u;
  return n;
}

inline std::size_t RunResult::interstitial_count() const {
  return records.size() - native_count();
}

inline double RunResult::wasted_cpu_seconds() const {
  double total = 0;
  for (const auto& r : killed) {
    total += static_cast<double>(r.job.cpus) *
             static_cast<double>(r.end - r.start);
  }
  return total;
}

}  // namespace istc::sched
