#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"
#include "workload/job.hpp"

/// \file job_store.hpp
/// Structure-of-arrays storage for every job the scheduler currently holds
/// (waiting, running, or killed-awaiting-its-stale-finish-event).
///
/// The scheduler's hot loops — victim selection for preemption and
/// unplanned failures, from-scratch profile rebuilds, reclaimable-capacity
/// checks — are scans over "every running job".  Storing those jobs in an
/// unordered_map made each scan a pointer chase; here they are parallel
/// arrays (state / start / estimated end / cpus / id / class) indexed by a
/// stable 32-bit slot, so a scan touches a handful of contiguous cache
/// lines.  The cold workload::Job payload (user, group, submit, runtime,
/// estimate...) lives in its own array, read only when a specific job is
/// acted on.
///
/// Slots are recycled through a free list, so the arrays stay sized to the
/// high-water mark of concurrently live jobs (not the log length), and the
/// engine's kJobFinish events can carry the slot directly — completion is
/// an array access, no hash lookup.
///
/// A killed job's slot parks in the zombie state instead of freeing: its
/// completion event is still queued, and the slot must not be reissued
/// until that stale event fires and releases it (the same protocol the old
/// killed_pending_ set implemented, now a state tag instead of a second
/// container).

namespace istc::sched {

/// Lifecycle tag of one slot.
enum class SlotState : std::uint8_t {
  kFree = 0,     ///< on the free list, contents meaningless
  kPending = 1,  ///< waiting in the scheduler's queue
  kRunning = 2,  ///< on CPUs; a kJobFinish event holds the slot number
  kZombie = 3,   ///< killed; held until the stale finish event fires
};

class JobStore {
 public:
  /// Insert a job as kPending and return its slot (free-list recycled).
  std::uint32_t acquire(const workload::Job& job) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      ISTC_ASSERT(state_[slot] == SlotState::kFree);
      job_[slot] = job;
    } else {
      slot = static_cast<std::uint32_t>(job_.size());
      job_.push_back(job);
      state_.push_back(SlotState::kFree);
      start_.push_back(0);
      est_end_.push_back(0);
      cpus_.push_back(0);
      id_.push_back(0);
      interstitial_.push_back(0);
    }
    state_[slot] = SlotState::kPending;
    start_[slot] = 0;
    est_end_[slot] = 0;
    cpus_[slot] = job.cpus;
    id_[slot] = job.id;
    interstitial_[slot] = job.interstitial() ? 1 : 0;
    ++live_;
    return slot;
  }

  /// kPending -> kRunning with the dispatch's start / estimated end.
  void mark_running(std::uint32_t slot, SimTime start, SimTime est_end) {
    ISTC_ASSERT(state_[slot] == SlotState::kPending);
    state_[slot] = SlotState::kRunning;
    start_[slot] = start;
    est_end_[slot] = est_end;
  }

  /// kRunning -> kZombie: the job was killed but its finish event is still
  /// queued and owns the slot.
  void mark_zombie(std::uint32_t slot) {
    ISTC_ASSERT(state_[slot] == SlotState::kRunning);
    state_[slot] = SlotState::kZombie;
    ++zombies_;
  }

  /// Free a slot (completion, or a zombie's stale finish event firing).
  void release(std::uint32_t slot) {
    ISTC_ASSERT(state_[slot] != SlotState::kFree);
    if (state_[slot] == SlotState::kZombie) --zombies_;
    state_[slot] = SlotState::kFree;
    free_.push_back(slot);
    --live_;
  }

  // -- hot columns ---------------------------------------------------------

  SlotState state(std::uint32_t slot) const { return state_[slot]; }
  SimTime start(std::uint32_t slot) const { return start_[slot]; }
  SimTime est_end(std::uint32_t slot) const { return est_end_[slot]; }
  int cpus(std::uint32_t slot) const { return cpus_[slot]; }
  workload::JobId id(std::uint32_t slot) const { return id_[slot]; }
  bool interstitial(std::uint32_t slot) const {
    return interstitial_[slot] != 0;
  }

  // -- cold payload --------------------------------------------------------

  const workload::Job& job(std::uint32_t slot) const { return job_[slot]; }

  // -- extent --------------------------------------------------------------

  /// One past the highest slot ever issued (scan bound; includes free
  /// slots, whose state tag excludes them from any walk).
  std::uint32_t slots() const { return static_cast<std::uint32_t>(job_.size()); }
  /// Non-free slots (pending + running + zombie).
  std::size_t live() const { return live_; }
  std::size_t zombies() const { return zombies_; }

  void reserve(std::size_t n) {
    job_.reserve(n);
    state_.reserve(n);
    start_.reserve(n);
    est_end_.reserve(n);
    cpus_.reserve(n);
    id_.reserve(n);
    interstitial_.reserve(n);
  }

 private:
  // Parallel hot arrays, all indexed by slot.
  std::vector<SlotState> state_;
  std::vector<SimTime> start_;
  std::vector<SimTime> est_end_;
  std::vector<int> cpus_;
  std::vector<workload::JobId> id_;
  std::vector<std::uint8_t> interstitial_;
  // Cold payload, same indexing.
  std::vector<workload::Job> job_;
  /// LIFO free list — recycling order is a pure function of event order,
  /// so slot assignment is deterministic.
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
  std::size_t zombies_ = 0;
};

}  // namespace istc::sched
