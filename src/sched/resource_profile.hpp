#pragma once

#include <cstddef>
#include <vector>

#include "util/time.hpp"

/// \file resource_profile.hpp
/// A step function of free CPUs over future time.
///
/// This single structure powers both backfill flavours and the omniscient
/// packer: reservations subtract capacity over an interval; queries ask how
/// much is free at an instant, the minimum over a window, or the earliest
/// start at which a (cpus x duration) rectangle fits.
///
/// Storage is a flat sorted array of breakpoints, not a tree: every hot
/// pass operation is a scan (earliest_fit walks candidate windows,
/// reserve/release sweep an interval, coalesce merges a run), and scanning
/// a few hundred contiguous 16-byte entries beats chasing red-black tree
/// nodes by a wide margin.  Point lookups are binary searches.  The
/// per-pass advance_origin bumps a head cursor instead of erasing nodes;
/// the dead prefix is reclaimed in bulk once it dominates the array.
///
/// Large profiles additionally carry a *hole index*: a lazily rebuilt
/// min/max segment tree over the live breakpoints that turns earliest_fit's
/// candidate walk and min_free's window scan into O(log n) descents
/// ("first step with >= c free after i" via the max tree, "first step with
/// < c free" via the min tree).  The index is a pure accelerator — answers
/// are identical by construction (pinned by a property test against the
/// linear scan) — and it only switches on once the live breakpoint count
/// reaches a threshold, below which the linear scan wins on locality.
/// Mutations never touch the tree; they mark it dirty and the next indexed
/// query rebuilds in one O(n) pass, which amortizes because backfill
/// passes issue many earliest_fit probes per profile mutation batch.

namespace istc::sched {

class ResourceProfile {
 public:
  /// Uniform capacity from `origin` to infinity.
  ResourceProfile(SimTime origin, int capacity);

  SimTime origin() const { return origin_; }
  int capacity() const { return capacity_; }

  /// Free CPUs at time t (t >= origin).
  int free_at(SimTime t) const;

  /// Minimum free CPUs over [start, end); end > start.
  int min_free(SimTime start, SimTime end) const;

  /// Subtract `cpus` over [start, end).  The interval must have at least
  /// `cpus` free throughout (checked) — callers find a fit first.
  void reserve(SimTime start, SimTime end, int cpus);

  /// Add `cpus` over [start, end) (capacity growth / release); the result
  /// may not exceed the construction capacity (checked).
  void release(SimTime start, SimTime end, int cpus);

  /// Earliest t >= not_before such that min_free(t, t+duration) >= cpus.
  /// Always succeeds (the profile is capacity after the last breakpoint)
  /// provided cpus <= capacity.
  SimTime earliest_fit(int cpus, Seconds duration, SimTime not_before) const;

  /// First instant strictly after t at which the free-CPU value changes,
  /// or kTimeInfinity when the function is constant from t onward.  The
  /// metrics sampler reads this as "how long does the current interstice
  /// hold"; equal-valued adjacent segments are skipped, so the answer is
  /// segmentation-agnostic.
  SimTime next_change(SimTime t) const;

  /// The step in force at t: free CPUs plus the instant that value next
  /// changes (kTimeInfinity when constant onward).  Equivalent to
  /// {free_at(t), next_change(t)} in a single descent — the sampler
  /// probes this every tick, so the paired query is on the hot path.
  struct Step {
    int free;
    SimTime until;
  };
  Step step_at(SimTime t) const;

  /// Advance the origin to t >= origin(), discarding breakpoints in the
  /// past.  The step function over [t, inf) is unchanged.  This is what
  /// keeps a pass-persistent profile from accumulating history: the
  /// scheduler advances to `now` at the top of every pass.
  void advance_origin(SimTime t);

  /// Merge every run of adjacent equal-valued segments.  reserve/release
  /// already coalesce around their own interval; this full sweep is the
  /// backstop for callers composing many operations (and the guarantee the
  /// segment-count tests pin: steps() is bounded by the number of distinct
  /// future change points, never by the operation count).
  void coalesce();

  /// True when `other` is the same step function over [origin, inf):
  /// same origin, same free CPUs at every instant (segmentation-agnostic,
  /// though coalesced profiles are canonical).  ISTC_PARANOID uses this to
  /// check the incrementally maintained profile against a from-scratch
  /// rebuild.
  bool same_function(const ResourceProfile& other) const;

  /// Number of internal breakpoints (diagnostics / complexity tests).
  std::size_t steps() const { return pts_.size() - head_; }

  // -- hole index ---------------------------------------------------------

  /// Live-breakpoint count at which queries switch to the segment-tree
  /// hole index.  kIndexDisabled turns the index off entirely.
  static constexpr std::size_t kIndexDisabled = static_cast<std::size_t>(-1);

  /// Process-wide default threshold for newly constructed profiles
  /// (tests/benches lower it to force the indexed path on small profiles).
  static void set_default_index_threshold(std::size_t threshold);
  static std::size_t default_index_threshold();

  /// Per-instance override (captured from the default at construction).
  void set_index_threshold(std::size_t threshold) {
    index_threshold_ = threshold;
  }
  std::size_t index_threshold() const { return index_threshold_; }

  /// Index rebuilds performed so far (diagnostics: the amortization claim
  /// is that this stays far below the query count on big profiles).
  std::uint64_t index_rebuilds() const { return index_rebuilds_; }

 private:
  /// One breakpoint: free CPUs from `t` until the next breakpoint.
  struct Pt {
    SimTime t;
    int f;
  };

  /// Index of the segment covering t (last live index with .t <= t).
  std::size_t find(SimTime t) const;

  /// Ensure a breakpoint exists exactly at t; returns its index.
  std::size_t split_at(SimTime t);

  /// Merge adjacent equal-valued steps around the given key range.
  void coalesce(SimTime lo, SimTime hi);

  // -- hole index internals ----------------------------------------------

  static constexpr std::size_t kNoStep = static_cast<std::size_t>(-1);

  bool use_index() const {
    return index_threshold_ != kIndexDisabled && steps() >= index_threshold_;
  }
  /// Rebuild the min/max trees if a mutation dirtied them.
  void ensure_index() const;
  /// First live-relative index >= lo whose free count is >= cpus (max-tree
  /// descent), or kNoStep.
  std::size_t first_at_least(std::size_t lo, int cpus) const;
  /// First live-relative index >= lo whose free count is < cpus (min-tree
  /// descent), or kNoStep.
  std::size_t first_below(std::size_t lo, int cpus) const;
  std::size_t descend_first(std::size_t node, std::size_t nlo, std::size_t nhi,
                            std::size_t lo, int cpus, bool below) const;
  /// Min free count over live-relative indices [lo, hi] (inclusive).
  int range_min(std::size_t lo, std::size_t hi) const;

  SimTime origin_;
  int capacity_;
  /// Breakpoints sorted by time; the live region is [head_, pts_.size())
  /// and its first entry sits exactly at origin_.  Entries before head_
  /// are consumed history awaiting bulk reclamation.
  std::vector<Pt> pts_;
  std::size_t head_ = 0;

  std::size_t index_threshold_;
  /// Segment trees over the live breakpoints' free counts, leaves at
  /// [tree_size_, tree_size_ + steps()); padding leaves hold sentinels
  /// that never satisfy either descent predicate.  Mutable: queries are
  /// const but rebuild the dirtied index lazily.
  mutable std::vector<int> tree_min_;
  mutable std::vector<int> tree_max_;
  mutable std::size_t tree_size_ = 0;
  mutable bool index_dirty_ = true;
  mutable std::uint64_t index_rebuilds_ = 0;
};

}  // namespace istc::sched
