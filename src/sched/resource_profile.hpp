#pragma once

#include <map>

#include "util/time.hpp"

/// \file resource_profile.hpp
/// A step function of free CPUs over future time.
///
/// This single structure powers both backfill flavours and the omniscient
/// packer: reservations subtract capacity over an interval; queries ask how
/// much is free at an instant, the minimum over a window, or the earliest
/// start at which a (cpus x duration) rectangle fits.

namespace istc::sched {

class ResourceProfile {
 public:
  /// Uniform capacity from `origin` to infinity.
  ResourceProfile(SimTime origin, int capacity);

  SimTime origin() const { return origin_; }
  int capacity() const { return capacity_; }

  /// Free CPUs at time t (t >= origin).
  int free_at(SimTime t) const;

  /// Minimum free CPUs over [start, end); end > start.
  int min_free(SimTime start, SimTime end) const;

  /// Subtract `cpus` over [start, end).  The interval must have at least
  /// `cpus` free throughout (checked) — callers find a fit first.
  void reserve(SimTime start, SimTime end, int cpus);

  /// Add `cpus` over [start, end) (capacity growth / release); the result
  /// may not exceed the construction capacity (checked).
  void release(SimTime start, SimTime end, int cpus);

  /// Earliest t >= not_before such that min_free(t, t+duration) >= cpus.
  /// Always succeeds (the profile is capacity after the last breakpoint)
  /// provided cpus <= capacity.
  SimTime earliest_fit(int cpus, Seconds duration, SimTime not_before) const;

  /// Number of internal breakpoints (diagnostics / complexity tests).
  std::size_t steps() const { return free_.size(); }

 private:
  /// Ensure a breakpoint exists exactly at t; returns iterator to it.
  std::map<SimTime, int>::iterator split_at(SimTime t);

  /// Merge adjacent equal-valued steps around the given key range.
  void coalesce(SimTime lo, SimTime hi);

  SimTime origin_;
  int capacity_;
  /// key = step start; value = free CPUs from key until the next key.
  /// Invariant: non-empty, first key == origin_.
  std::map<SimTime, int> free_;
};

}  // namespace istc::sched
