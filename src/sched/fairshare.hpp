#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/time.hpp"
#include "workload/job.hpp"

/// \file fairshare.hpp
/// Decayed-usage fair share, the priority machinery behind all three sites'
/// queueing systems (Table 1): Ross/PBS runs the simplest flavour (all
/// users equal), Blue Mountain/LSF hierarchical group-level shares, and
/// Blue Pacific/DPCS combines user- and group-level shares.
///
/// Usage is exponentially decayed CPU-seconds; a principal's priority is
/// its share target minus its normalized recent usage, so heavy recent
/// consumers sink.  Priorities are recomputed at every scheduling pass —
/// this *dynamic re-prioritization* is what lets a newly submitted job
/// poach a queue position, the delay-cascade mechanism of the paper §4.3.

namespace istc::sched {

enum class FairShareMode : std::uint8_t {
  kEqualUsers,    ///< Ross: every user holds an equal share (single level)
  kGroupHierarchy,///< Blue Mountain: group shares, then users within group
  kUserAndGroup,  ///< Blue Pacific: weighted sum of user and group deficits
};

struct FairShareConfig {
  FairShareMode mode = FairShareMode::kEqualUsers;
  /// Half-life of historical usage.
  Seconds half_life = 7 * kSecondsPerDay;
  /// Relative weight of the group-level deficit (kUserAndGroup mode).
  double group_weight = 0.5;
  /// Priority points per hour of queue wait (aging prevents starvation).
  double age_weight_per_hour = 0.02;
  /// Priority bonus for wide jobs: size_weight * log2(cpus)/log2(4096).
  /// ASCI capability machines ranked big jobs up so they were not starved
  /// by streams of small work — without this, a 512-CPU job can be poached
  /// indefinitely under dynamic re-prioritization.
  double size_weight = 0.5;
};

class FairShareTracker {
 public:
  explicit FairShareTracker(FairShareConfig cfg);

  /// Charge finished (or elapsed) work to a principal pair.
  void charge(workload::UserId user, workload::GroupId group,
              double cpu_seconds, SimTime now);

  /// Ledger version: bumped by every charge().  Between equal epochs the
  /// share-deficit of every principal is mathematically constant (all
  /// accounts decay at the same exponential rate, so normalized fractions
  /// cancel the decay), which is what lets the scheduler reuse a cached
  /// priority order instead of re-sorting every pass.
  std::uint64_t epoch() const { return epoch_; }

  /// Priority of a job at time `now` (higher runs earlier).  `submit` feeds
  /// the aging term.
  double priority(const workload::Job& job, SimTime now) const;

  /// The share-normalized deficit of a principal pair — the expensive,
  /// per-(user, group) part of priority().  Exposed so a scheduling pass
  /// can compute it once per principal and combine per job; composing
  /// deficit() with priority_with_deficit() is bit-identical to priority().
  double deficit(workload::UserId user, workload::GroupId group,
                 SimTime now) const;

  /// Combine a precomputed deficit with the per-job aging and size terms.
  double priority_with_deficit(double deficit, const workload::Job& job,
                               SimTime now) const;

  /// Decayed usage of a user/group at `now` (exposed for tests).
  double user_usage(workload::UserId user, SimTime now) const;
  double group_usage(workload::GroupId group, SimTime now) const;

  const FairShareConfig& config() const { return cfg_; }

 private:
  struct Account {
    double usage = 0.0;     ///< decayed CPU-seconds as of `as_of`
    SimTime as_of = 0;
  };

  double decayed(const Account& a, SimTime now) const;
  static void charge_account(Account& a, double amount, SimTime now,
                             double decay_per_sec);

  FairShareConfig cfg_;
  double ln2_over_half_life_;
  std::unordered_map<workload::UserId, Account> users_;
  std::unordered_map<workload::GroupId, Account> groups_;
  double total_usage_ = 0.0;  ///< decayed grand total
  SimTime total_as_of_ = 0;
  std::uint64_t epoch_ = 0;   ///< ledger version (see epoch())
};

}  // namespace istc::sched
