#include "sched/resource_profile.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "util/assert.hpp"

namespace istc::sched {

namespace {
/// Relaxed atomic: benches/tests set it up front, profiles built on pool
/// threads read it; no ordering is implied beyond the value itself.
std::atomic<std::size_t> g_default_index_threshold{256};
}  // namespace

void ResourceProfile::set_default_index_threshold(std::size_t threshold) {
  g_default_index_threshold.store(threshold, std::memory_order_relaxed);
}

std::size_t ResourceProfile::default_index_threshold() {
  return g_default_index_threshold.load(std::memory_order_relaxed);
}

ResourceProfile::ResourceProfile(SimTime origin, int capacity)
    : origin_(origin),
      capacity_(capacity),
      index_threshold_(default_index_threshold()) {
  ISTC_EXPECTS(capacity >= 0);
  pts_.push_back(Pt{origin_, capacity_});
}

std::size_t ResourceProfile::find(SimTime t) const {
  const auto first = pts_.begin() + static_cast<std::ptrdiff_t>(head_);
  const auto it = std::upper_bound(
      first, pts_.end(), t, [](SimTime v, const Pt& p) { return v < p.t; });
  ISTC_ASSERT(it != first);
  return static_cast<std::size_t>(it - pts_.begin()) - 1;
}

int ResourceProfile::free_at(SimTime t) const {
  ISTC_EXPECTS(t >= origin_);
  return pts_[find(t)].f;
}

int ResourceProfile::min_free(SimTime start, SimTime end) const {
  ISTC_EXPECTS(start >= origin_);
  ISTC_EXPECTS(end > start);
  std::size_t i = find(start);
  if (use_index()) {
    ensure_index();
    // Last live segment starting inside [start, end): times are integral,
    // so that is the segment covering end - 1.
    const std::size_t last = find(end - 1);
    return range_min(i - head_, last - head_);
  }
  int lo = pts_[i].f;
  for (++i; i < pts_.size() && pts_[i].t < end; ++i) {
    lo = std::min(lo, pts_[i].f);
  }
  return lo;
}

std::size_t ResourceProfile::split_at(SimTime t) {
  const std::size_t i = find(t);
  if (pts_[i].t == t) return i;
  pts_.insert(pts_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
              Pt{t, pts_[i].f});
  return i + 1;
}

void ResourceProfile::coalesce(SimTime lo, SimTime hi) {
  // Mirror of the textbook map walk: consider (kept, next) pairs while the
  // kept breakpoint is at or before hi; drop `next` when equal-valued.
  // Survivors compact leftward in place; the single erase at the end
  // closes the gap with one move of the untouched tail.
  const auto first = pts_.begin() + static_cast<std::ptrdiff_t>(head_);
  const auto it = std::lower_bound(
      first, pts_.end(), lo, [](const Pt& p, SimTime v) { return p.t < v; });
  std::size_t w = static_cast<std::size_t>(it - pts_.begin());
  if (w > head_) --w;  // include the segment the range's left edge cuts into
  std::size_t j = w + 1;
  for (; j < pts_.size(); ++j) {
    if (pts_[w].t > hi) break;
    if (pts_[j].f == pts_[w].f) continue;  // merged into the kept segment
    pts_[++w] = pts_[j];
  }
  if (j != w + 1) {
    pts_.erase(pts_.begin() + static_cast<std::ptrdiff_t>(w) + 1,
               pts_.begin() + static_cast<std::ptrdiff_t>(j));
  }
}

void ResourceProfile::reserve(SimTime start, SimTime end, int cpus) {
  ISTC_EXPECTS(start >= origin_);
  ISTC_EXPECTS(end > start);
  ISTC_EXPECTS(cpus > 0);
  ISTC_EXPECTS(min_free(start, end) >= cpus);
  const std::size_t lo = split_at(start);
  // end may be past every breakpoint; splitting materializes the boundary.
  const std::size_t hi = split_at(end);
  for (std::size_t i = lo; i < hi; ++i) {
    pts_[i].f -= cpus;
    ISTC_ASSERT(pts_[i].f >= 0);
  }
  coalesce(start, end);
  index_dirty_ = true;
}

void ResourceProfile::release(SimTime start, SimTime end, int cpus) {
  ISTC_EXPECTS(start >= origin_);
  ISTC_EXPECTS(end > start);
  ISTC_EXPECTS(cpus > 0);
  const std::size_t lo = split_at(start);
  const std::size_t hi = split_at(end);
  for (std::size_t i = lo; i < hi; ++i) {
    pts_[i].f += cpus;
    ISTC_ASSERT(pts_[i].f <= capacity_);
  }
  coalesce(start, end);
  index_dirty_ = true;
}

SimTime ResourceProfile::next_change(SimTime t) const {
  return step_at(t).until;
}

ResourceProfile::Step ResourceProfile::step_at(SimTime t) const {
  ISTC_EXPECTS(t >= origin_);
  // Fast path: t inside the first segment.  The sampler probes settled
  // state, where every breakpoint at or before the probe time has already
  // been consumed by a scheduler pass (advance_origin), so this is the
  // common case — one bounds check instead of a binary search.
  std::size_t i = head_;
  if (head_ + 1 < pts_.size() && pts_[head_ + 1].t <= t) i = find(t);
  const int at_t = pts_[i].f;
  for (++i; i < pts_.size(); ++i) {
    if (pts_[i].f != at_t) return {at_t, pts_[i].t};
  }
  return {at_t, kTimeInfinity};
}

void ResourceProfile::advance_origin(SimTime t) {
  ISTC_EXPECTS(t >= origin_);
  if (t == origin_) return;
  // The segment covering t becomes the first live entry, re-anchored
  // exactly at t; everything before it is dead history behind the cursor.
  std::size_t i = find(t);
  pts_[i].t = t;
  head_ = i;
  origin_ = t;
  // The new first segment may now equal its successor (the erased history
  // carried the only difference); fold the run so the profile stays
  // canonical.
  while (head_ + 1 < pts_.size() && pts_[head_ + 1].f == pts_[head_].f) {
    pts_[head_ + 1].t = t;
    ++head_;
  }
  // Reclaim the dead prefix in bulk once it dominates: amortized O(1) per
  // advance, and the array never grows beyond ~2x the live breakpoints.
  if (head_ > 64 && head_ * 2 > pts_.size()) {
    pts_.erase(pts_.begin(), pts_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  index_dirty_ = true;
}

void ResourceProfile::coalesce() {
  coalesce(origin_, pts_.back().t);
  index_dirty_ = true;
}

bool ResourceProfile::same_function(const ResourceProfile& other) const {
  if (origin_ != other.origin_ || capacity_ != other.capacity_) return false;
  // Sweep the union of breakpoints; the functions are equal iff they agree
  // on every segment the union induces.
  std::size_t a = head_;
  std::size_t b = other.head_;
  int va = pts_[a].f;
  int vb = other.pts_[b].f;
  ++a;
  ++b;
  while (a < pts_.size() || b < other.pts_.size()) {
    if (va != vb) return false;
    if (b == other.pts_.size() ||
        (a < pts_.size() && pts_[a].t < other.pts_[b].t)) {
      va = pts_[a].f;
      ++a;
    } else if (a == pts_.size() || other.pts_[b].t < pts_[a].t) {
      vb = other.pts_[b].f;
      ++b;
    } else {
      va = pts_[a].f;
      vb = other.pts_[b].f;
      ++a;
      ++b;
    }
  }
  return va == vb;
}

SimTime ResourceProfile::earliest_fit(int cpus, Seconds duration,
                                      SimTime not_before) const {
  ISTC_EXPECTS(cpus > 0);
  ISTC_EXPECTS(duration > 0);
  ISTC_EXPECTS(cpus <= capacity_);
  SimTime t = std::max(not_before, origin_);
  const std::size_t n = pts_.size();
  if (use_index()) {
    // Same candidate walk as the linear scan below, but every "next step
    // with >= cpus free" / "first blocking step" hop is a tree descent, so
    // a probe costs O(holes_skipped * log n) instead of O(n).
    ensure_index();
    for (;;) {
      const std::size_t i = find(t);
      if (pts_[i].f < cpus) {
        const std::size_t j = first_at_least(i + 1 - head_, cpus);
        if (j == kNoStep) {
          ISTC_ASSERT(pts_[n - 1].f >= cpus);
          return pts_[n - 1].t > t ? pts_[n - 1].t : t;
        }
        t = pts_[head_ + j].t;
        continue;
      }
      const SimTime end = t + duration;
      const std::size_t blocking = first_below(i + 1 - head_, cpus);
      if (blocking == kNoStep || pts_[head_ + blocking].t >= end) return t;
      const std::size_t after = first_at_least(blocking + 1, cpus);
      if (after == kNoStep) {
        ISTC_ASSERT(pts_[n - 1].f >= cpus);
        return pts_[n - 1].t;
      }
      t = pts_[head_ + after].t;
    }
  }
  // Walk candidate start times: current t, then each breakpoint where free
  // capacity rises.  For each candidate, scan the window; on failure, jump
  // to the step after the blocking segment.
  for (;;) {
    // Find the segment covering t.
    std::size_t i = find(t);
    if (pts_[i].f < cpus) {
      // Blocked immediately; advance to the next step with enough room.
      ++i;
      while (i < n && pts_[i].f < cpus) ++i;
      if (i == n) {
        // Last segment value is reachable only if >= cpus; since the final
        // segment extends to infinity and capacity >= cpus, the last
        // segment must eventually fit.  If not, the profile is saturated
        // forever, which reserve() forbids (it cannot exceed capacity).
        ISTC_ASSERT(pts_[n - 1].f >= cpus);
        return pts_[n - 1].t > t ? pts_[n - 1].t : t;
      }
      t = pts_[i].t;
      continue;
    }
    // Scan forward through [t, t+duration).
    const SimTime end = t + duration;
    std::size_t scan = i + 1;
    bool ok = true;
    for (; scan < n && pts_[scan].t < end; ++scan) {
      if (pts_[scan].f < cpus) {
        ok = false;
        break;
      }
    }
    if (ok) return t;
    // Restart after the blocking segment.
    std::size_t after = scan;
    while (after < n && pts_[after].f < cpus) ++after;
    ISTC_ASSERT(after < n || pts_[n - 1].f >= cpus);
    t = after < n ? pts_[after].t : pts_[n - 1].t;
  }
}

void ResourceProfile::ensure_index() const {
  if (!index_dirty_) return;
  const std::size_t n = steps();
  std::size_t size = 1;
  while (size < n) size <<= 1;
  tree_size_ = size;
  // Padding sentinels satisfy neither descent predicate (min never < cpus,
  // max never >= cpus), so descents cannot land on a padding leaf.
  tree_min_.assign(2 * size, std::numeric_limits<int>::max());
  tree_max_.assign(2 * size, std::numeric_limits<int>::min());
  for (std::size_t k = 0; k < n; ++k) {
    tree_min_[size + k] = pts_[head_ + k].f;
    tree_max_[size + k] = pts_[head_ + k].f;
  }
  for (std::size_t v = size; v-- > 1;) {
    tree_min_[v] = std::min(tree_min_[2 * v], tree_min_[2 * v + 1]);
    tree_max_[v] = std::max(tree_max_[2 * v], tree_max_[2 * v + 1]);
  }
  index_dirty_ = false;
  ++index_rebuilds_;
}

std::size_t ResourceProfile::descend_first(std::size_t node, std::size_t nlo,
                                           std::size_t nhi, std::size_t lo,
                                           int cpus, bool below) const {
  if (nhi <= lo) return kNoStep;
  const bool possible =
      below ? tree_min_[node] < cpus : tree_max_[node] >= cpus;
  if (!possible) return kNoStep;
  if (nhi - nlo == 1) return nlo;
  const std::size_t mid = nlo + (nhi - nlo) / 2;
  const std::size_t left =
      descend_first(2 * node, nlo, mid, lo, cpus, below);
  if (left != kNoStep) return left;
  return descend_first(2 * node + 1, mid, nhi, lo, cpus, below);
}

std::size_t ResourceProfile::first_at_least(std::size_t lo, int cpus) const {
  return descend_first(1, 0, tree_size_, lo, cpus, /*below=*/false);
}

std::size_t ResourceProfile::first_below(std::size_t lo, int cpus) const {
  return descend_first(1, 0, tree_size_, lo, cpus, /*below=*/true);
}

int ResourceProfile::range_min(std::size_t lo, std::size_t hi) const {
  ISTC_ASSERT(lo <= hi && hi < steps());
  int res = std::numeric_limits<int>::max();
  for (std::size_t l = lo + tree_size_, r = hi + tree_size_ + 1; l < r;
       l >>= 1, r >>= 1) {
    if (l & 1) res = std::min(res, tree_min_[l++]);
    if (r & 1) res = std::min(res, tree_min_[--r]);
  }
  return res;
}

}  // namespace istc::sched
