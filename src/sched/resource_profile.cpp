#include "sched/resource_profile.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace istc::sched {

ResourceProfile::ResourceProfile(SimTime origin, int capacity)
    : origin_(origin), capacity_(capacity) {
  ISTC_EXPECTS(capacity >= 0);
  free_[origin_] = capacity_;
}

int ResourceProfile::free_at(SimTime t) const {
  ISTC_EXPECTS(t >= origin_);
  auto it = free_.upper_bound(t);
  ISTC_ASSERT(it != free_.begin());
  --it;
  return it->second;
}

int ResourceProfile::min_free(SimTime start, SimTime end) const {
  ISTC_EXPECTS(start >= origin_);
  ISTC_EXPECTS(end > start);
  auto it = free_.upper_bound(start);
  ISTC_ASSERT(it != free_.begin());
  --it;
  int lo = it->second;
  for (++it; it != free_.end() && it->first < end; ++it) {
    lo = std::min(lo, it->second);
  }
  return lo;
}

std::map<SimTime, int>::iterator ResourceProfile::split_at(SimTime t) {
  auto it = free_.lower_bound(t);
  if (it != free_.end() && it->first == t) return it;
  ISTC_ASSERT(it != free_.begin());
  auto prev = std::prev(it);
  return free_.emplace_hint(it, t, prev->second);
}

void ResourceProfile::coalesce(SimTime lo, SimTime hi) {
  auto it = free_.lower_bound(lo);
  if (it != free_.begin()) --it;
  while (it != free_.end()) {
    auto next = std::next(it);
    if (next == free_.end() || it->first > hi) break;
    if (next->second == it->second) {
      free_.erase(next);
    } else {
      it = next;
    }
  }
}

void ResourceProfile::reserve(SimTime start, SimTime end, int cpus) {
  ISTC_EXPECTS(start >= origin_);
  ISTC_EXPECTS(end > start);
  ISTC_EXPECTS(cpus > 0);
  ISTC_EXPECTS(min_free(start, end) >= cpus);
  auto lo = split_at(start);
  // end may be past every breakpoint; splitting materializes the boundary.
  split_at(end);
  for (auto it = lo; it != free_.end() && it->first < end; ++it) {
    it->second -= cpus;
    ISTC_ASSERT(it->second >= 0);
  }
  coalesce(start, end);
}

void ResourceProfile::release(SimTime start, SimTime end, int cpus) {
  ISTC_EXPECTS(start >= origin_);
  ISTC_EXPECTS(end > start);
  ISTC_EXPECTS(cpus > 0);
  auto lo = split_at(start);
  split_at(end);
  for (auto it = lo; it != free_.end() && it->first < end; ++it) {
    it->second += cpus;
    ISTC_ASSERT(it->second <= capacity_);
  }
  coalesce(start, end);
}

SimTime ResourceProfile::next_change(SimTime t) const {
  return step_at(t).until;
}

ResourceProfile::Step ResourceProfile::step_at(SimTime t) const {
  ISTC_EXPECTS(t >= origin_);
  // Fast path: t inside the first segment.  The sampler probes settled
  // state, where every breakpoint at or before the probe time has already
  // been consumed by a scheduler pass (advance_origin), so this is the
  // common case — two node reads instead of a tree descent.
  auto it = free_.begin();
  if (auto second = std::next(it);
      second != free_.end() && second->first <= t) {
    it = std::prev(free_.upper_bound(t));
  }
  const int at_t = it->second;
  for (++it; it != free_.end(); ++it) {
    if (it->second != at_t) return {at_t, it->first};
  }
  return {at_t, kTimeInfinity};
}

void ResourceProfile::advance_origin(SimTime t) {
  ISTC_EXPECTS(t >= origin_);
  if (t == origin_) return;
  // Value in force at t comes from the last breakpoint <= t.
  auto it = free_.upper_bound(t);
  ISTC_ASSERT(it != free_.begin());
  --it;
  const int at_t = it->second;
  free_.erase(free_.begin(), free_.upper_bound(t));
  // Re-anchor the first segment exactly at t (erase may have removed it).
  free_[t] = at_t;
  origin_ = t;
  // The new first segment may now equal its successor (the erased history
  // carried the only difference); merge so the profile stays canonical.
  coalesce(t, t);
}

void ResourceProfile::coalesce() {
  coalesce(origin_, std::prev(free_.end())->first);
}

bool ResourceProfile::same_function(const ResourceProfile& other) const {
  if (origin_ != other.origin_ || capacity_ != other.capacity_) return false;
  // Sweep the union of breakpoints; the functions are equal iff they agree
  // on every segment the union induces.
  auto a = free_.begin();
  auto b = other.free_.begin();
  int va = a->second;
  int vb = b->second;
  ++a;
  ++b;
  while (a != free_.end() || b != other.free_.end()) {
    if (va != vb) return false;
    if (b == other.free_.end() || (a != free_.end() && a->first < b->first)) {
      va = a->second;
      ++a;
    } else if (a == free_.end() || b->first < a->first) {
      vb = b->second;
      ++b;
    } else {
      va = a->second;
      vb = b->second;
      ++a;
      ++b;
    }
  }
  return va == vb;
}

SimTime ResourceProfile::earliest_fit(int cpus, Seconds duration,
                                      SimTime not_before) const {
  ISTC_EXPECTS(cpus > 0);
  ISTC_EXPECTS(duration > 0);
  ISTC_EXPECTS(cpus <= capacity_);
  SimTime t = std::max(not_before, origin_);
  // Walk candidate start times: current t, then each breakpoint where free
  // capacity rises.  For each candidate, scan the window; on failure, jump
  // to the step after the blocking segment.
  for (;;) {
    // Find the first segment covering t.
    auto it = free_.upper_bound(t);
    ISTC_ASSERT(it != free_.begin());
    --it;
    if (it->second < cpus) {
      // Blocked immediately; advance to the next step with enough room.
      ++it;
      while (it != free_.end() && it->second < cpus) ++it;
      if (it == free_.end()) {
        // Last segment value is reachable only if >= cpus; since the final
        // segment extends to infinity and capacity >= cpus, the last
        // segment must eventually fit.  If not, the profile is saturated
        // forever, which reserve() forbids (it cannot exceed capacity).
        ISTC_ASSERT(std::prev(free_.end())->second >= cpus);
        return std::prev(free_.end())->first > t ? std::prev(free_.end())->first
                                                 : t;
      }
      t = it->first;
      continue;
    }
    // Scan forward through [t, t+duration).
    const SimTime end = t + duration;
    auto scan = std::next(it);
    bool ok = true;
    for (; scan != free_.end() && scan->first < end; ++scan) {
      if (scan->second < cpus) {
        ok = false;
        break;
      }
    }
    if (ok) return t;
    // Restart after the blocking segment.
    auto after = scan;
    while (after != free_.end() && after->second < cpus) ++after;
    ISTC_ASSERT(after != free_.end() || std::prev(free_.end())->second >= cpus);
    t = after != free_.end() ? after->first : std::prev(free_.end())->first;
  }
}

}  // namespace istc::sched
