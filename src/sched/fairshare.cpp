#include "sched/fairshare.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace istc::sched {

FairShareTracker::FairShareTracker(FairShareConfig cfg)
    : cfg_(cfg),
      ln2_over_half_life_(std::log(2.0) /
                          static_cast<double>(cfg.half_life)) {
  ISTC_EXPECTS(cfg.half_life > 0);
  ISTC_EXPECTS(cfg.group_weight >= 0 && cfg.group_weight <= 1);
  ISTC_EXPECTS(cfg.age_weight_per_hour >= 0);
}

double FairShareTracker::decayed(const Account& a, SimTime now) const {
  ISTC_EXPECTS(now >= a.as_of);
  return a.usage *
         std::exp(-ln2_over_half_life_ * static_cast<double>(now - a.as_of));
}

void FairShareTracker::charge_account(Account& a, double amount, SimTime now,
                                      double decay_per_sec) {
  a.usage = a.usage * std::exp(-decay_per_sec *
                               static_cast<double>(now - a.as_of)) +
            amount;
  a.as_of = now;
}

void FairShareTracker::charge(workload::UserId user, workload::GroupId group,
                              double cpu_seconds, SimTime now) {
  ISTC_EXPECTS(cpu_seconds >= 0);
  charge_account(users_[user], cpu_seconds, now, ln2_over_half_life_);
  charge_account(groups_[group], cpu_seconds, now, ln2_over_half_life_);
  Account total{total_usage_, total_as_of_};
  charge_account(total, cpu_seconds, now, ln2_over_half_life_);
  total_usage_ = total.usage;
  total_as_of_ = total.as_of;
  ++epoch_;
}

double FairShareTracker::user_usage(workload::UserId user, SimTime now) const {
  const auto it = users_.find(user);
  return it == users_.end() ? 0.0 : decayed(it->second, now);
}

double FairShareTracker::group_usage(workload::GroupId group,
                                     SimTime now) const {
  const auto it = groups_.find(group);
  return it == groups_.end() ? 0.0 : decayed(it->second, now);
}

double FairShareTracker::deficit(workload::UserId user,
                                 workload::GroupId group, SimTime now) const {
  Account total{total_usage_, total_as_of_};
  const double grand = decayed(total, now);
  // Normalized usage fractions in [0,1]; with no history everyone is even.
  const double u_frac = grand > 0 ? user_usage(user, now) / grand : 0.0;
  const double g_frac = grand > 0 ? group_usage(group, now) / grand : 0.0;

  switch (cfg_.mode) {
    case FairShareMode::kEqualUsers:
      return -u_frac;
    case FairShareMode::kGroupHierarchy:
      // Group level dominates; user level breaks ties within a group.
      return -g_frac - 0.1 * u_frac;
    case FairShareMode::kUserAndGroup:
      return -(1.0 - cfg_.group_weight) * u_frac -
             cfg_.group_weight * g_frac;
  }
  ISTC_ASSERT(false);
  return 0.0;
}

double FairShareTracker::priority_with_deficit(double deficit,
                                               const workload::Job& job,
                                               SimTime now) const {
  const double age_hours = to_hours(now - job.submit);
  const double size_bonus =
      cfg_.size_weight *
      (std::log2(static_cast<double>(job.cpus)) / 12.0);  // log2(4096)
  return deficit + cfg_.age_weight_per_hour * age_hours + size_bonus;
}

double FairShareTracker::priority(const workload::Job& job,
                                  SimTime now) const {
  return priority_with_deficit(deficit(job.user, job.group, now), job, now);
}

}  // namespace istc::sched
