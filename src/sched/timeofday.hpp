#pragma once

#include <optional>

#include "util/time.hpp"
#include "workload/job.hpp"

/// \file timeofday.hpp
/// Time-of-day start constraints (the Blue Pacific / DPCS feature of
/// Table 1): big or long jobs may only *start* during the night window or
/// on weekends, leaving daytime capacity for interactive-scale work.

namespace istc::sched {

struct TimeOfDayRule {
  /// Jobs at or above this width are gated.
  int min_cpus_gated = 0;
  /// Jobs with estimates at or above this length are gated.
  Seconds min_estimate_gated = kTimeInfinity;
  /// Night window [night_start_hour, night_end_hour) wrapping midnight.
  int night_start_hour = 18;
  int night_end_hour = 8;
  /// Weekends (days 5,6 of a Monday-started trace) are always open.
  bool weekends_open = true;

  bool gates(const workload::Job& job) const {
    return job.cpus >= min_cpus_gated ||
           job.estimate >= min_estimate_gated;
  }

  /// May a gated job start at t?
  bool window_open(SimTime t) const;

  /// May this job start at t?
  bool allowed(const workload::Job& job, SimTime t) const {
    return !gates(job) || window_open(t);
  }

  /// Earliest time >= t at which the job may start (t itself if allowed).
  SimTime earliest_allowed(const workload::Job& job, SimTime t) const;
};

/// A scheduler either has a rule or starts anything anytime.
using MaybeTimeOfDayRule = std::optional<TimeOfDayRule>;

}  // namespace istc::sched
