#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/machine.hpp"
#include "sched/fairshare.hpp"
#include "sched/job_store.hpp"
#include "sched/pipeline.hpp"
#include "sched/record.hpp"
#include "sched/resource_profile.hpp"
#include "sched/timeofday.hpp"
#include "sim/engine.hpp"
#include "trace/tracer.hpp"
#include "util/cow_log.hpp"
#include "workload/job.hpp"

/// \file scheduler.hpp
/// The space-shared batch scheduler: priority queue + backfill, the
/// simulator's stand-in for PBS / LSF / DPCS.
///
/// One scheduling pass runs per distinct event timestamp (engine quiescent
/// hook).  The pass is a pipeline of stages (see pipeline.hpp): priorities
/// are re-established (dynamic re-prioritization), jobs start in priority
/// order, blocked jobs backfill under the selected policy, and the
/// post-pass gate hands control to the interstitial driver.  The scheduler
/// only ever consults *estimated* runtimes — exactly the information a
/// real resource manager has — which is what lets fallible interstitial
/// submission disturb native jobs (paper §4.3).
///
/// The future free-CPU ResourceProfile is pass-persistent: job starts,
/// finishes, and kills apply incremental deltas and each pass merely
/// advances the origin, instead of rebuilding the profile from every
/// running job.  Build with -DISTC_PARANOID=ON to cross-check the
/// incremental profile against a from-scratch rebuild at every pass.
///
/// Live jobs (waiting / running / killed-awaiting-stale-finish) live in a
/// structure-of-arrays JobStore (job_store.hpp); the queue is a vector of
/// slot numbers, finish events carry the slot, and every "walk the running
/// jobs" loop (victim selection, profile rebuild) scans parallel arrays.

namespace istc::sched {

enum class BackfillMode : std::uint8_t {
  /// EASY: only the highest-priority blocked job holds a reservation.
  kEasy,
  /// Conservative: every blocked job holds a reservation (Ross/PBS's
  /// "more restrictive" backfill, paper §4.3.2.1).
  kConservative,
  /// No backfill at all: strict priority order, nothing may overtake a
  /// blocked job.  Not used by any site preset — it exists as the ablation
  /// baseline showing why backfill matters to interstitial computing.
  kNone,
};

struct PolicySpec {
  std::string name = "easy-equal";
  BackfillMode backfill = BackfillMode::kEasy;
  FairShareConfig fairshare;
  MaybeTimeOfDayRule time_of_day;
  /// Extension beyond the paper (its jobs are strictly non-preemptive):
  /// when a native job cannot start, kill just enough *interstitial* jobs
  /// (youngest first — least work lost) to start it immediately.  Native
  /// impact collapses to ~zero; the price is the killed jobs' wasted
  /// cycles, reported via RunResult::killed.
  bool preempt_interstitial = false;
  /// Maintain the free-CPU profile incrementally across passes (the fast
  /// path).  OFF rebuilds it from every running job at each pass — kept
  /// as the A/B baseline for bench/micro_scheduler and as a debugging
  /// fallback; schedules are identical either way.
  bool incremental_profile = true;
};

/// Snapshot handed to the post-pass hook (the interstitial driver).
struct PassContext {
  SimTime now = 0;
  /// Free CPUs after every startable native job has started.
  int free_cpus = 0;
  /// True when no native job is waiting.
  bool queue_empty = true;
  /// Earliest (estimate-based) start of the highest-priority waiting job;
  /// the paper's "backfillWallTime".  kTimeInfinity when queue_empty.
  SimTime head_earliest_start = kTimeInfinity;
  /// Minimum earliest start over *all* waiting jobs.  The interstitial
  /// driver gates on this: protecting only the head livelocks mid-size
  /// waiters when the head is pinned far away by overestimated runtimes
  /// (scavenged CPUs would be re-taken the instant they free).
  SimTime queue_earliest_start = kTimeInfinity;
};

/// Cheap counters exposed for diagnostics, tests, and the micro benches.
struct SchedulerStats {
  std::uint64_t passes = 0;
  std::uint64_t native_starts = 0;
  std::uint64_t interstitial_starts = 0;
  /// Native jobs started while a higher-priority job stayed blocked in the
  /// same pass — i.e. genuine backfill starts.
  std::uint64_t backfilled_starts = 0;
  std::uint64_t reservations = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t interstitial_kills = 0;
  /// Passes that re-sorted the queue vs. reused the cached priority order.
  std::uint64_t priority_recomputes = 0;
  std::uint64_t priority_reuses = 0;
  std::size_t max_queue_length = 0;
};

/// Instantaneous scheduler state as seen by the metrics sampler.  Every
/// field is sim-time derived, so equal-seed runs probe identical values.
/// CPU accounting satisfies busy_native_cpus + busy_interstitial_cpus +
/// free_cpus + offline_cpus == machine capacity at every instant (pinned
/// by tests/metrics/test_sampler.cpp under a fault timeline).
struct SchedulerProbe {
  SimTime now = 0;
  int busy_native_cpus = 0;         ///< CPUs held by running native jobs
  int busy_interstitial_cpus = 0;   ///< CPUs held by running interstitials
  int free_cpus = 0;                ///< idle, allocatable CPUs
  int offline_cpus = 0;             ///< CPUs down from unplanned failures
  std::size_t queue_native = 0;     ///< waiting native jobs
  std::size_t running_native = 0;
  std::size_t running_interstitial = 0;
  /// Seconds until the head waiting job's earliest (estimate-based) start —
  /// the paper's backfill wall time, from the most recent pass; -1 when no
  /// job is blocked.
  Seconds head_backfill_wall = -1;
  /// Free CPUs per the free-CPU profile at `now` — the current interstice
  /// width in the estimated schedule (equals free_cpus between passes when
  /// incremental maintenance is on).
  int interstice_cpus = 0;
  /// Seconds until the free-CPU profile next changes value (how long the
  /// current interstice holds, per estimates); -1 when constant forever.
  Seconds interstice_hold = -1;
  /// Breakpoints in the free-CPU profile (scheduling-state complexity).
  std::size_t profile_steps = 0;
  /// Cumulative busy CPU-seconds by class, projected to `now`.  Exact
  /// integers; per-interval deltas reproduce metrics::utilization_series
  /// numerators for kill-free runs.
  std::uint64_t native_cpu_sec = 0;
  std::uint64_t interstitial_cpu_sec = 0;
};

class BatchScheduler : private sim::JobEventSink {
 public:
  BatchScheduler(sim::Engine& engine, cluster::Machine machine,
                 PolicySpec policy);

  /// Run-fork clone: become a mid-run copy of `other`, attached to
  /// `engine` (which must already hold a copy of the source engine's
  /// state; see sim::Engine::adopt_state and core::SimRun).  The big
  /// append-only logs (submission table, completed records) are shared
  /// copy-on-write — `other` is non-const only to freeze them.  Hooks and
  /// the tracer are NOT copied: they are identities of the forked stack,
  /// which re-registers its own.
  BatchScheduler(sim::Engine& engine, BatchScheduler& other);

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Schedule arrival events for every job in the log.  Pre-reserves the
  /// engine's event queue for all submissions, so loading a multi-month
  /// log performs one allocation instead of a growth cascade.
  void load(const workload::JobLog& log);

  /// Submit one job at its submit time (must be >= engine.now()).  The
  /// arrival is a typed event carrying an index into the submission table,
  /// not a job-capturing closure.
  void submit(const workload::Job& job);

  /// Hook invoked after each native scheduling pass; the interstitial
  /// driver lives here.  At most one hook.
  void set_post_pass_hook(std::function<void(const PassContext&)> hook);

  /// Hook invoked just before a job's CPUs are allocated, with the free-CPU
  /// count at that instant (the interstice width an interstitial dispatch
  /// landed in).  Purely observational — it must not touch the scheduler.
  /// At most one hook; metrics::RunMetrics installs it.
  void set_start_hook(std::function<void(const workload::Job&, int)> hook) {
    on_start_ = std::move(hook);
  }

  /// Hook invoked whenever a running job is killed before completion —
  /// preemption or an unplanned failure; the record's end is the kill time
  /// and the reason says which path killed it.  The driver uses it for
  /// retry / checkpoint-restart accounting.  At most one hook; it fires
  /// exactly once per entry appended to RunResult::killed.
  void set_kill_hook(std::function<void(const JobRecord&, KillReason)> hook);

  /// Start a job right now, bypassing the queue (interstitial path).
  /// Returns false if it does not fit (space, downtime, or time-of-day).
  bool try_start_immediately(const workload::Job& job);

  /// Unplanned failure (fault::FaultInjector): take `cpus` CPUs offline
  /// until `until`, killing running jobs youngest-first — natives and
  /// interstitials alike, a crash spares nobody — when the free pool is
  /// short.  Kill records (end = kill time) land in RunResult::killed, the
  /// kill hook fires per victim with `reason`, and the returned copies let
  /// the injector requeue natives.  The free-CPU profile sees the capacity
  /// loss immediately; repair is self-scheduled and restores the CPUs at
  /// `until`.  The requested width is clamped to the capacity still up, so
  /// overlapping failures compose.
  std::vector<JobRecord> fail_capacity(int cpus, SimTime until,
                                       KillReason reason);

  /// CPUs currently held offline by unplanned failures.
  int failed_cpus() const { return failed_cpus_; }

  /// Wake the scheduler at time t (schedules a no-op event; passes run
  /// after every event timestamp).  Deduplicated: if a wake is already
  /// queued in (now, t], that pass re-evaluates and re-arms as needed, so
  /// no new event is scheduled.
  void wake_at(SimTime t);

  /// Attach a tracer (nullptr detaches): job lifecycle, reservations, and
  /// pass cost flow into it, and the downtime calendar is recorded once up
  /// front.  Also forwarded to the engine so the whole stack shares one
  /// event stream.  Tracing observes the schedule, never perturbs it.
  void set_tracer(trace::Tracer* tracer);
  trace::Tracer* tracer() const { return tracer_; }

  const cluster::Machine& machine() const { return machine_; }
  const PolicySpec& policy() const { return policy_; }
  const FairShareTracker& fairshare() const { return fairshare_; }
  sim::Engine& engine() { return engine_; }

  std::size_t queue_length() const { return pending_.size(); }
  std::size_t running_count() const {
    return running_native_ + running_interstitial_;
  }
  std::size_t completed_count() const { return records_.size(); }

  /// Mid-run view of the completed-job log (completion order).  take_result
  /// moves the records out; this accessor lets a live observer — the
  /// what-if service hashing its baseline frontier — read them while the
  /// run is still in flight.
  const util::CowLog<JobRecord>& completed_records() const { return records_; }
  /// Mid-run view of the kill log (preemptions and faults, kill order).
  const std::vector<JobRecord>& killed_records() const {
    return killed_records_;
  }

  /// The structure-of-arrays job storage (diagnostics / tests).
  const JobStore& store() const { return store_; }
  const SchedulerStats& stats() const { return stats_; }

  /// The pass pipeline (PriorityStage → DispatchStage → BackfillStage →
  /// GateStage) with each stage's run counters.
  const std::vector<std::unique_ptr<PassStage>>& pipeline() const {
    return pipeline_;
  }

  /// The pass-persistent future free-CPU profile.  Between passes it
  /// describes running jobs only (reservations are pass-local).
  const ResourceProfile& profile() const { return profile_; }

  /// Snapshot from the most recent completed scheduling pass (zero-valued
  /// before the first pass).  Cached by GateStage whether or not a
  /// post-pass hook is installed.
  const PassContext& last_pass() const { return last_pass_; }

  /// Instantaneous state probe for the metrics sampler; see SchedulerProbe.
  /// Profile-derived fields (interstice_hold, profile_steps) reflect the
  /// last pass when incremental maintenance is off (rebuild mode leaves the
  /// profile stale between passes).
  SchedulerProbe probe() const;

  /// Collect results; requires the simulation to have drained (no pending
  /// or running jobs).
  RunResult take_result(SimTime span);

 private:
  friend class PriorityStage;
  friend class DispatchStage;
  friend class BackfillStage;
  friend class GateStage;

  // -- sim::JobEventSink (typed event dispatch) ---------------------------
  /// A submission event fired: move submission_table_[index] into the
  /// pending queue.
  void job_submit(std::uint32_t index) override;
  /// A job-finish event fired: the typed replacement for the old
  /// completion lambda; carries the job-store slot.
  void job_finish(std::uint32_t slot) override;
  /// A capacity-repair event fired: give the outage's CPUs back (the
  /// matching profile reservation expires at the same instant).
  void capacity_repair(std::uint32_t outage_id) override;

  /// A reservation applied to the profile for this pass only; GateStage
  /// releases it before the post-pass hook runs.
  struct TempReservation {
    SimTime start = 0;
    SimTime end = 0;
    int cpus = 0;
  };

  /// Capacity held offline by an unplanned failure until its repair time;
  /// rebuild-mode profiles must re-reserve these (they are not running
  /// jobs).  The id travels in the typed kCapacityRepair event, which
  /// erases the entry when the repair fires.
  struct CapacityOutage {
    std::uint32_t id = 0;
    int cpus = 0;
    SimTime until = 0;
  };

  /// The scheduling pass (engine quiescent hook): advance/rebuild the
  /// profile, then run the stage pipeline.
  void pass(SimTime now);

  /// Advance the incremental profile's origin to now — or rebuild it from
  /// the running slots when incremental maintenance is off.  Under
  /// ISTC_PARANOID the incremental profile is checked against a rebuild
  /// every pass.
  void prepare_profile(SimTime now);

  /// From-scratch profile: capacity minus every running job's estimated
  /// remainder (the old per-pass construction; now the A/B baseline and
  /// the paranoid cross-check).
  ResourceProfile rebuild_profile(SimTime now) const;

  /// Reserve on the profile for this pass only (blocked-job reservations).
  void reserve_temp(SimTime start, SimTime end, int cpus);

  /// Handle one queued job within the dispatch/backfill walk; shared by
  /// DispatchStage and BackfillStage.  Returns true when the job started;
  /// otherwise earliest_out holds its earliest (estimate-based) start.
  bool try_dispatch(std::uint32_t slot, SimTime now, bool may_start,
                    bool preempt, SimTime& earliest_out);

  /// Blocked-job reservation: temp-reserve [t, t+estimate), count it, and
  /// record the reservation event (head job always; every blocked job under
  /// conservative backfill).
  void make_reservation(const workload::Job& job, SimTime t);

  /// Preemption (policy.preempt_interstitial): can `job` start now if we
  /// killed every running interstitial job?  (space, downtime, gating).
  bool could_start_with_kills(const workload::Job& job, SimTime now) const;

  /// Kill youngest-first interstitial jobs, releasing them from the
  /// profile, until `job` fits at `now` per the profile; returns false
  /// (killing nothing further helps) if the fit never materializes.
  bool preempt_for(const workload::Job& job, SimTime now);

  /// Kill one running job: release its CPUs and profile remainder, append
  /// the kill record, park the slot as a zombie for its stale completion
  /// event, and fire the kill hook.  Shared by preemption and
  /// fail_capacity.
  void kill_running_job(std::uint32_t slot, KillReason reason);

  /// Allocate CPUs, apply the profile delta, schedule completion.  The
  /// slot must be kPending (queued, or freshly acquired by the immediate
  /// interstitial path).
  void start_job(std::uint32_t slot, SimTime now);

  /// Accumulate busy-CPU integrals up to `now` (lazy: called at every
  /// start/complete/kill, i.e. whenever a busy count is about to change).
  void advance_busy_integrals(SimTime now);

  /// Record a job-lifecycle trace event (no-op without a full tracer).
  void trace_job(trace::EventKind kind, const workload::Job& job,
                 std::int64_t value = 0, SimTime aux_time = 0);

  void complete_job(std::uint32_t slot, SimTime now);

  /// Earliest start >= from satisfying profile space, downtime drain, and
  /// time-of-day gating, all per the *estimate*.
  SimTime earliest_start(const ResourceProfile& profile,
                         const workload::Job& job, SimTime from) const;

  sim::Engine& engine_;
  cluster::Machine machine_;
  PolicySpec policy_;
  FairShareTracker fairshare_;

  /// Submitted-but-not-yet-arrived jobs, indexed by the 32-bit argument of
  /// their kJobSubmit event.  Grows monotonically (the log is finite);
  /// keeping entries after arrival keeps indices stable — including across
  /// fork boundaries, which is why this is a CowLog: forks share the
  /// frozen prefix instead of copying the whole native log.
  util::CowLog<workload::Job> submission_table_;

  /// SoA storage for every live job (pending / running / zombie); finish
  /// events and the queue below refer to its slots.
  JobStore store_;

  /// Waiting native jobs as job-store slots.  After every pass this is in
  /// priority order (GateStage compacts along the sorted walk), which is
  /// what lets PriorityStage reuse the order when nothing changed.
  std::vector<std::uint32_t> pending_;
  /// Completed-job records; copy-on-write so a fork late in a run shares
  /// the (large) history instead of duplicating it.
  util::CowLog<JobRecord> records_;
  std::vector<JobRecord> killed_records_;
  std::function<void(const PassContext&)> post_pass_;
  std::function<void(const JobRecord&, KillReason)> on_kill_;
  std::function<void(const workload::Job&, int)> on_start_;
  SchedulerStats stats_;

  // -- live utilization accounting (SchedulerProbe) ------------------------
  // Busy CPUs by class plus lazily advanced cumulative busy integrals;
  // the integral at time T is invariant to same-instant event ordering,
  // which is what makes sampled series deterministic.
  int busy_native_cpus_ = 0;
  int busy_interstitial_cpus_ = 0;
  std::size_t running_native_ = 0;
  std::size_t running_interstitial_ = 0;
  std::uint64_t native_cpu_sec_ = 0;
  std::uint64_t interstitial_cpu_sec_ = 0;
  SimTime busy_integral_at_ = 0;
  /// Snapshot of the most recent pass (see last_pass()).
  PassContext last_pass_;
  trace::Tracer* tracer_ = nullptr;
  /// Reservation each waiting job last held, for honored/violated events.
  std::unordered_map<workload::JobId, SimTime> reserved_start_;

  // -- pass pipeline state -------------------------------------------------
  std::vector<std::unique_ptr<PassStage>> pipeline_;
  PassState pass_state_;
  /// Pass-persistent future free-CPU profile (running jobs only between
  /// passes; plus this pass's temporary reservations during one).
  ResourceProfile profile_;
  std::vector<TempReservation> temp_reservations_;
  /// Priority cache: valid while the fair-share ledger epoch matches and
  /// no job entered the queue since the last sort.
  std::vector<double> prio_;
  std::uint64_t prio_epoch_ = 0;
  bool pending_dirty_ = true;
  bool order_cached_ = false;
  /// Scratch for GateStage's in-order queue compaction.
  std::vector<std::uint32_t> compact_buf_;
  /// Scratch for victim collection (preempt_for / fail_capacity).
  std::vector<std::uint32_t> victim_buf_;

  /// Future wake timestamps with a queued engine event, pruned each pass;
  /// wake_at dedups against the earliest of these.
  std::set<SimTime> queued_wakes_;
  bool in_pass_ = false;

  /// Pass counter for the wall-clock obs profiler's 1-in-N sampling
  /// (sampling keeps the stage quantiles representative while the
  /// per-pass clock reads stay off the hot path).
  std::uint32_t obs_sample_tick_ = 0;

  /// Unrepaired fail_capacity outages (usually zero or one entry).
  std::vector<CapacityOutage> outages_;
  std::uint32_t next_outage_id_ = 0;
  int failed_cpus_ = 0;
};

}  // namespace istc::sched
