#pragma once

#include "cluster/presets.hpp"
#include "sched/scheduler.hpp"

/// \file presets.hpp
/// Per-site queueing policies (Table 1):
///   Ross / PBS   — conservative backfill, all users hold equal shares
///   Blue Mountain / LSF — EASY backfill, hierarchical group fair share
///   Blue Pacific / DPCS — EASY backfill, user+group fair share, and
///                         time-of-day start constraints on large jobs

namespace istc::sched {

PolicySpec site_policy(cluster::Site site);

}  // namespace istc::sched
